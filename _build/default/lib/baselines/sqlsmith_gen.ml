(** SQLsmith-style generation: random, grammar-driven queries over the
    whole catalog. It reaches many functions (its strength in Tables 5/6),
    but every argument is an ordinary random value — the boundary space
    stays untouched, which is exactly why it finds no SQL function bugs in
    the paper's comparison. *)

open Sqlfun_ast
open Sqlfun_functions

let columns = [ ("items", [ "id"; "name"; "price"; "added" ]); ("logs", [ "ts"; "level"; "msg" ]) ]

let make ~dialect ~seed =
  let rng = Prng.create seed in
  let profile = Sqlfun_dialects.Dialect.find_exn dialect in
  let registry = Sqlfun_dialects.Dialect.registry profile in
  (* SQLsmith's type-directed generator cannot synthesize values for the
     exotic argument sorts (maps, geometries, XML, paths), so those
     functions stay out of its reach — the gap behind its Table 5 deficit. *)
  let reachable spec =
    List.for_all
      (fun h ->
        match h with
        | Func_sig.H_map | Func_sig.H_geo | Func_sig.H_xml | Func_sig.H_xpath
        | Func_sig.H_json_path | Func_sig.H_interval_unit ->
          false
        | _ -> true)
      spec.Func_sig.hints
    && spec.Func_sig.name <> "INTERVAL_LIT"
  in
  let specs = List.filter reachable (Registry.specs registry) in
  let scalar_specs =
    List.filter
      (fun s -> match s.Func_sig.kind with Func_sig.Scalar _ -> true | _ -> false)
      specs
  in
  let agg_specs =
    List.filter
      (fun s -> match s.Func_sig.kind with Func_sig.Aggregate _ -> true | _ -> false)
      specs
  in
  let random_column rng table =
    match List.assoc_opt table columns with
    | Some cols -> Ast.Column (None, Prng.pick rng cols)
    | None -> Ast.Column (None, "id")
  in
  let rec random_expr rng depth table =
    if depth = 0 then
      match Prng.int rng 3 with
      | 0 when table <> None ->
        (match table with Some t -> random_column rng t | None -> Baseline.random_scalar rng)
      | _ -> Baseline.random_scalar rng
    else
      match Prng.int rng 6 with
      | 0 | 1 ->
        (* a random function call with random literal arguments *)
        Baseline.random_call_of_spec rng (Prng.pick rng scalar_specs)
      | 2 ->
        let op = Prng.pick rng [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Concat ] in
        Ast.Binop (op, random_expr rng (depth - 1) table, random_expr rng (depth - 1) table)
      | 3 ->
        let op = Prng.pick rng [ Ast.Eq; Ast.Lt; Ast.Gt; Ast.Neq ] in
        Ast.Binop (op, random_expr rng (depth - 1) table, random_expr rng (depth - 1) table)
      | 4 ->
        Ast.Case
          {
            operand = None;
            branches =
              [ (random_expr rng (depth - 1) table, random_expr rng (depth - 1) table) ];
            else_ = Some (random_expr rng (depth - 1) table);
          }
      | _ -> random_expr rng 0 table
  in
  let next () =
    let use_table = Prng.bool rng in
    let table = if use_table then Some (Prng.pick rng [ "items"; "logs" ]) else None in
    let aggregated = use_table && Prng.int rng 4 = 0 && agg_specs <> [] in
    let projection =
      if aggregated then begin
        (* aggregates range over selected columns, as in the real tool *)
        let spec = Prng.pick rng agg_specs in
        let args =
          if spec.Func_sig.name = "COUNT" then [ Ast.Star ]
          else
            List.init (Stdlib.max 1 spec.Func_sig.min_args) (fun _ ->
                match table with
                | Some t -> random_column rng t
                | None -> Baseline.random_int rng)
        in
        [ Ast.Proj_expr (Ast.Call { fname = spec.Func_sig.name; args; distinct = false }, None) ]
      end
      else
        List.init
          (1 + Prng.int rng 3)
          (fun _ -> Ast.Proj_expr (random_expr rng 2 table, None))
    in
    let where =
      if use_table && Prng.bool rng then
        Some
          (Ast.Binop
             ( Prng.pick rng [ Ast.Gt; Ast.Lt; Ast.Eq ],
               (match table with Some t -> random_column rng t | None -> Ast.int_lit 1),
               Baseline.random_scalar rng ))
      else None
    in
    let sel =
      {
        Ast.sel_distinct = Prng.int rng 8 = 0;
        projection;
        from =
          (match table with Some t -> Some (Ast.From_table (t, None)) | None -> None);
        where;
        group_by = [];
        having = None;
      }
    in
    let body =
      if Prng.int rng 6 = 0 then
        Ast.Body_union
          {
            all = Prng.bool rng;
            left = Ast.Body_select sel;
            right =
              Ast.Body_select
                (Ast.simple_select [ Ast.Proj_expr (Baseline.random_scalar rng, None) ]);
          }
      else Ast.Body_select sel
    in
    Ast.Select_stmt
      {
        Ast.body;
        order_by = [];
        limit = (if Prng.int rng 4 = 0 then Some (1 + Prng.int rng 10) else None);
      }
  in
  { Baseline.name = "sqlsmith"; dialect; next }
