lib/coverage/coverage.ml: Hashtbl List String
