lib/coverage/coverage.mli:
