lib/harness/compare.ml: Baseline Dialect List Option Soft Sqlancer_gen Sqlfun_baselines Sqlfun_coverage Sqlfun_dialects Sqlfun_fault Sqlsmith_gen Squirrel_gen
