lib/harness/logic_oracle.ml: Ast Baseline Buffer Dialect Engine Float List Printf Prng Sql_pp Sqlfun_ast Sqlfun_baselines Sqlfun_dialects Sqlfun_engine Sqlfun_value Value
