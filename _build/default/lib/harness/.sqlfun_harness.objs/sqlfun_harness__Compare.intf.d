lib/harness/compare.mli:
