lib/harness/logic_oracle.mli: Dialect Sqlfun_ast Sqlfun_dialects Sqlfun_engine
