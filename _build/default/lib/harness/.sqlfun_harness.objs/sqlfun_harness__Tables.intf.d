lib/harness/tables.mli: Compare Soft
