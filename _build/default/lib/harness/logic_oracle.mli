(** Correctness-bug oracles — the §8 extension the paper sketches
    ("Correctness Bugs in SQL Functions"): metamorphic identities whose
    violation exposes logic bugs that never crash.

    Three oracles are implemented:
    - {b TLP partitioning} (after Rigger & Su): for any predicate [p],
      [|Q|] must equal [|Q WHERE p| + |Q WHERE NOT p| + |Q WHERE p IS NULL|];
    - {b NoREC-style re-execution}: the row count selected by [WHERE p]
      must equal the number of rows for which projecting [p] yields true;
    - {b aggregate/array equivalence}: [SUM(c)] ≡ [ARRAY_SUM(ARRAY_AGG(c))]
      and likewise for COUNT/MIN/MAX — two independent implementations of
      the same computation must agree. *)

open Sqlfun_dialects

type mismatch = {
  oracle : string;       (** "tlp" | "norec" | "agg-equiv" *)
  sql : string;          (** the base query *)
  detail : string;       (** what disagreed *)
}

type report = {
  checks : int;
  skipped : int;   (** predicate errored on the base query: not applicable *)
  mismatches : mismatch list;
}

val tlp_check :
  Sqlfun_engine.Engine.t -> table:string -> predicate:Sqlfun_ast.Ast.expr ->
  (mismatch option, string) result
(** [Error] when even the unpartitioned query fails (inapplicable). *)

val norec_check :
  Sqlfun_engine.Engine.t -> table:string -> predicate:Sqlfun_ast.Ast.expr ->
  (mismatch option, string) result

val agg_equiv_check :
  Sqlfun_engine.Engine.t -> table:string -> column:string ->
  (mismatch list, string) result

val run : ?seed:int -> ?budget:int -> Dialect.profile -> report
(** Random predicates over the profile's seeded tables, all three oracles,
    [budget] checks in total (default 300). *)

val report_to_string : report -> string
