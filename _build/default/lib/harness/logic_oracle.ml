open Sqlfun_ast
open Sqlfun_engine
open Sqlfun_dialects
open Sqlfun_baselines

type mismatch = { oracle : string; sql : string; detail : string }

type report = { checks : int; skipped : int; mismatches : mismatch list }

let count_rows engine stmt =
  match Engine.exec_stmt engine stmt with
  | Ok (Engine.Rows rs) -> Ok (List.length rs.Sqlfun_engine.Interp.rows)
  | Ok (Engine.Affected _) -> Error "not a query"
  | Error e -> Error (Engine.error_to_string e)

let select_all table ~where =
  Ast.Select_stmt
    (Ast.query_of_select
       {
         Ast.sel_distinct = false;
         projection = [ Ast.Proj_star ];
         from = Some (Ast.From_table (table, None));
         where;
         group_by = [];
         having = None;
       })

let tlp_check engine ~table ~predicate =
  let base = select_all table ~where:None in
  match count_rows engine base with
  | Error e -> Error e
  | Ok total ->
    let part where_pred = count_rows engine (select_all table ~where:(Some where_pred)) in
    (match
       ( part predicate,
         part (Ast.Unop (Ast.Not, predicate)),
         part (Ast.Is_null (predicate, false)) )
     with
     | Ok t, Ok f, Ok n ->
       if t + f + n = total then Ok None
       else
         Ok
           (Some
              {
                oracle = "tlp";
                sql = Sql_pp.stmt base;
                detail =
                  Printf.sprintf
                    "partitions %d + %d + %d <> %d for predicate %s" t f n
                    total (Sql_pp.expr predicate);
              })
     | Error e, _, _ | _, Error e, _ | _, _, Error e ->
       (* a predicate the engine rejects is not a logic-oracle case *)
       Error e)

let norec_check engine ~table ~predicate =
  let optimized = select_all table ~where:(Some predicate) in
  match count_rows engine optimized with
  | Error e -> Error e
  | Ok selected ->
    (* reference execution: project the predicate over every row and count
       the rows where it is exactly TRUE *)
    let projected =
      Ast.Select_stmt
        (Ast.query_of_select
           {
             Ast.sel_distinct = false;
             projection = [ Ast.Proj_expr (predicate, None) ];
             from = Some (Ast.From_table (table, None));
             where = None;
             group_by = [];
             having = None;
           })
    in
    (match Engine.exec_stmt engine projected with
     | Error e -> Error (Engine.error_to_string e)
     | Ok (Engine.Affected _) -> Error "not a query"
     | Ok (Engine.Rows rs) ->
       let truthy =
         List.length
           (List.filter
              (fun row ->
                match row with
                | [ Sqlfun_value.Value.Bool true ] -> true
                | [ Sqlfun_value.Value.Int i ] -> i <> 0L
                | _ -> false)
              rs.Sqlfun_engine.Interp.rows)
       in
       if truthy = selected then Ok None
       else
         Ok
           (Some
              {
                oracle = "norec";
                sql = Sql_pp.stmt optimized;
                detail =
                  Printf.sprintf "WHERE selected %d rows but the predicate is true on %d"
                    selected truthy;
              }))

let one_value engine sql =
  match Engine.exec_sql engine sql with
  | Ok (Engine.Rows { rows = [ [ v ] ]; _ }) -> Ok v
  | Ok _ -> Error "expected a single value"
  | Error e -> Error (Engine.error_to_string e)

let agg_equiv_check engine ~table ~column =
  (* Each pair computes the same quantity through two code paths. *)
  let pairs =
    [
      ( Printf.sprintf "SELECT SUM(%s) FROM %s" column table,
        Printf.sprintf "SELECT ARRAY_SUM(ARRAY_AGG(%s)) FROM %s" column table );
      ( Printf.sprintf "SELECT COUNT(%s) FROM %s" column table,
        Printf.sprintf
          "SELECT ARRAY_LENGTH(ARRAY_AGG(%s)) - ARRAY_SUM(ARRAY_AGG(ISNULL(%s))) FROM %s"
          column column table );
      ( Printf.sprintf "SELECT MIN(%s) FROM %s" column table,
        Printf.sprintf "SELECT ARRAY_MIN(ARRAY_AGG(%s)) FROM %s" column table );
      ( Printf.sprintf "SELECT MAX(%s) FROM %s" column table,
        Printf.sprintf "SELECT ARRAY_MAX(ARRAY_AGG(%s)) FROM %s" column table );
    ]
  in
  let numeric_eq a b =
    let open Sqlfun_value in
    if Value.equal a b then true
    else
      match (Value.is_null a, Value.is_null b) with
      | true, true -> true
      | _ ->
        (match
           ( float_of_string_opt (Value.to_display a),
             float_of_string_opt (Value.to_display b) )
         with
         | Some x, Some y -> Float.abs (x -. y) < 1e-9 *. (1.0 +. Float.abs x)
         | _ -> false)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (sql_a, sql_b) :: rest ->
      (match (one_value engine sql_a, one_value engine sql_b) with
       | Ok va, Ok vb ->
         if numeric_eq va vb then go acc rest
         else
           go
             ({
                oracle = "agg-equiv";
                sql = sql_a;
                detail =
                  Printf.sprintf "%s = %s but %s = %s" sql_a
                    (Sqlfun_value.Value.to_display va)
                    sql_b
                    (Sqlfun_value.Value.to_display vb);
              }
             :: acc)
             rest
       | Error e, _ | _, Error e ->
         (* MIN over e.g. NULL-only columns can legitimately differ in
            applicability; treat as inapplicable, not a mismatch *)
         ignore e;
         go acc rest)
  in
  go [] pairs

(* random predicates over the seeded schema *)
let tables = [ ("items", [ "id"; "name"; "price"; "added" ]); ("logs", [ "level"; "msg" ]) ]

let random_predicate rng table =
  let cols = List.assoc table tables in
  let col () = Ast.Column (None, Prng.pick rng cols) in
  match Prng.int rng 6 with
  | 0 -> Ast.Binop (Prng.pick rng [ Ast.Gt; Ast.Lt; Ast.Eq ], col (), Baseline.random_scalar rng)
  | 1 -> Ast.Is_null (col (), Prng.bool rng)
  | 2 -> Ast.Binop (Ast.Like, col (), Ast.Str_lit ("%" ^ Prng.word rng ^ "%"))
  | 3 ->
    Ast.Binop
      ( Ast.Gt,
        Ast.call "LENGTH" [ col () ],
        Ast.Int_lit (string_of_int (Prng.int rng 10)) )
  | 4 ->
    Ast.In_list (col (), [ Baseline.random_scalar rng; Baseline.random_scalar rng ])
  | _ ->
    Ast.Binop
      ( Prng.pick rng [ Ast.And; Ast.Or ],
        Ast.Binop (Ast.Gt, col (), Baseline.random_scalar rng),
        Ast.Is_null (col (), false) )

let run ?(seed = 17) ?(budget = 300) profile =
  let rng = Prng.create seed in
  let engine = Dialect.make_engine profile in
  let checks = ref 0 and skipped = ref 0 in
  let mismatches = ref [] in
  let record = function
    | Ok (Some m) -> mismatches := m :: !mismatches
    | Ok None -> ()
    | Error _ -> incr skipped
  in
  while !checks < budget do
    let table = Prng.pick rng (List.map fst tables) in
    let predicate = random_predicate rng table in
    (match !checks mod 3 with
     | 0 -> record (tlp_check engine ~table ~predicate)
     | 1 -> record (norec_check engine ~table ~predicate)
     | _ ->
       (match
          agg_equiv_check engine ~table
            ~column:(Prng.pick rng (List.assoc table tables))
        with
        | Ok ms -> mismatches := ms @ !mismatches
        | Error _ -> incr skipped));
    incr checks
  done;
  { checks = !checks; skipped = !skipped; mismatches = List.rev !mismatches }

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "logic oracles: %d checks, %d inapplicable, %d mismatches\n"
       r.checks r.skipped (List.length r.mismatches));
  List.iter
    (fun m ->
      Buffer.add_string buf (Printf.sprintf "  [%s] %s\n      %s\n" m.oracle m.sql m.detail))
    r.mismatches;
  Buffer.contents buf
