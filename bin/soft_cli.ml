(** The SOFT command-line interface.

    - [soft_cli fuzz <dialect>] — run a SOFT campaign against one dialect
    - [soft_cli study] — regenerate the bug-study statistics (§4/§5)
    - [soft_cli compare] — equal-budget tool comparison (Tables 5/6)
    - [soft_cli tables] — every paper table/figure, paper-vs-measured
    - [soft_cli repl <dialect>] — interactive SQL against a dialect *)

open Cmdliner
open Sqlfun_dialects
module Telemetry = Sqlfun_telemetry.Telemetry
module Profile = Sqlfun_telemetry.Profile
module Timeseries = Sqlfun_telemetry.Timeseries
module Json = Sqlfun_telemetry.Json

let dialect_arg =
  let doc =
    Printf.sprintf "Target dialect: one of %s (unique prefixes accepted)."
      (String.concat ", " Dialect.ids)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIALECT" ~doc)

let budget_arg default =
  let doc = "Maximum number of generated statements to execute (0 = exhaust)." in
  Arg.(value & opt int default & info [ "budget"; "b" ] ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains (0 = \
     $(b,Domain.recommended_domain_count ()), i.e. the machine's core \
     count). Verdicts, bug lists and FP signatures are bit-identical \
     at any job count; only wall time changes."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Number of shards to partition each campaign's case stream across. \
     0 picks a default: one shard per job for $(b,fuzz), 1 for \
     $(b,tables) (whose campaigns already run in parallel — sharding \
     them too would oversubscribe the cores). More shards than jobs is \
     fine; 1 shard is the sequential pipeline."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"K" ~doc)

(* 0-valued knobs resolve to the machine: jobs defaults to the core
   count, shards to the job count (one shard per worker). *)
let resolve_parallelism ~jobs ~shards =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let shards = if shards <= 0 then jobs else shards in
  (jobs, shards)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Stream telemetry events (spans, verdicts, bugs, FP \
                 signatures) to $(docv) as JSON lines.")

let no_memo_arg =
  Arg.(value & flag
       & info [ "no-memo" ]
           ~doc:"Disable verdict memoization (every case takes the \
                 engine round-trip). Verdicts, bug lists and FP \
                 signatures are bit-identical with memoization on or \
                 off; the flag exists to verify that and to time it.")

let no_compile_arg =
  Arg.(value & flag
       & info [ "no-compile" ]
           ~doc:"Disable closure compilation (every case is evaluated by \
                 the AST interpreter instead of a cached compiled plan). \
                 Verdicts, bug lists and FP signatures are bit-identical \
                 with compilation on or off; the flag exists to verify \
                 that and to time it.")

let no_compact_arg =
  Arg.(value & flag
       & info [ "no-compact" ]
           ~doc:"Disable compact value representations (RANGE results \
                 and repeated/padded strings are materialized eagerly \
                 instead of lazily). Verdicts, bug lists and FP \
                 signatures are bit-identical with compaction on or \
                 off; the flag exists to verify that and to time it.")

let no_batch_arg =
  Arg.(value & flag
       & info [ "no-batch" ]
           ~doc:"Disable slot-stream batched execution (skeleton-sharing \
                 pattern families are enumerated and classified one \
                 materialized statement at a time instead of one \
                 skeleton plus slot vectors per family). Verdicts, bug \
                 lists and FP signatures are bit-identical with batching \
                 on or off; the flag exists to verify that and to time \
                 it.")

let no_stateful_arg =
  Arg.(value & flag
       & info [ "no-stateful" ]
           ~doc:"Disable the synthesized stateful scenario stream \
                 (prerequisite CREATE/INSERT statements before a probe). \
                 With the flag the campaign is the historical \
                 single-statement pipeline, bit-identical to releases \
                 without scenario support; without it the parse- and \
                 storage-stage fault sites become reachable.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write a machine-readable campaign metrics snapshot to \
                 $(docv).")

let profile_arg =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Write the execute-stage attribution profile to $(docv) \
                 in folded-stack format \
                 ($(b,soft;dialect;function;phase self_ns) per line) — \
                 feed directly to flamegraph.pl.")

let timeseries_arg =
  Arg.(value & opt (some string) None
       & info [ "timeseries" ] ~docv:"FILE"
           ~doc:"Stream periodic campaign snapshots (cases/s, coverage, \
                 bug counts, memo hit rate, per-shard progress) to \
                 $(docv) as JSON lines. The final $(b,shard=-1) \
                 snapshot is computed from merged totals and is \
                 identical at any shard/job count.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Render a single-line live progress status on stderr \
                 from the campaign snapshots.")

(* exact id first, then a unique prefix ("postgres" -> postgresql) *)
let resolve_dialect id =
  match Dialect.find id with
  | Some p -> Ok p
  | None ->
    let plen = String.length id in
    (match
       List.filter
         (fun p ->
           String.length p.Dialect.id >= plen
           && String.sub p.Dialect.id 0 plen = id)
         Dialect.all
     with
     | [ p ] -> Ok p
     | _ :: _ :: _ ->
       Error (Printf.sprintf "ambiguous dialect %S (matches several of %s)" id
                (String.concat ", " Dialect.ids))
     | [] ->
       Error (Printf.sprintf "unknown dialect %S (expected one of %s)" id
                (String.concat ", " Dialect.ids)))

(* Builds a telemetry collector whose sink is the --trace file (null sink
   without the flag), runs [f tel] — which returns a thunk producing the
   snapshot, forced only when --json asked for one — then writes the
   artifacts. *)
let with_telemetry ~trace ~json f =
  let trace_oc = Option.map open_out trace in
  let sink =
    match trace_oc with
    | Some oc -> Telemetry.jsonl_sink oc
    | None -> Telemetry.null_sink
  in
  let tel = Telemetry.create ~sink () in
  (* the runner flushes registered sinks at campaign end and on the
     crash/restart path, so an abnormal termination can't truncate the
     trace mid-event *)
  Option.iter
    (fun oc -> Telemetry.add_flusher tel (fun () -> Stdlib.flush oc))
    trace_oc;
  let finish () = Option.iter close_out trace_oc in
  match f tel with
  | make_snapshot ->
    (match json with
     | Some path ->
       let oc = open_out path in
       output_string oc (Json.to_string (make_snapshot ()));
       output_char oc '\n';
       close_out oc;
       Printf.printf "telemetry snapshot written to %s\n" path
     | None -> ());
    finish ();
    Option.iter
      (fun file -> Printf.printf "telemetry trace written to %s\n" file)
      trace
  | exception exn ->
    finish ();
    raise exn

(* One status line, redrawn in place on stderr. Snapshots may arrive
   from worker domains; the mutex keeps redraws whole. *)
let progress_renderer dialect_id =
  let m = Mutex.create () in
  fun (s : Timeseries.snapshot) ->
    Mutex.lock m;
    let shard_view =
      match Array.length s.Timeseries.shard_cases with
      | 0 | 1 -> ""
      | n -> Printf.sprintf " | %d shards" n
    in
    Printf.eprintf "\r[%s] %d cases | %.0f c/s | %d branches | %d bugs%s  %!"
      dialect_id
      (Array.fold_left ( + ) 0 s.Timeseries.shard_cases)
      s.Timeseries.cases_per_s s.Timeseries.branches s.Timeseries.new_bugs
      shard_view;
    Mutex.unlock m

let fuzz_cmd =
  let run dialect budget jobs shards no_memo no_compile no_compact
      no_stateful no_batch verbose report trace json profile_out
      timeseries_out progress =
    match resolve_dialect dialect with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok prof ->
      let budget = if budget = 0 then None else Some budget in
      let jobs, shards = resolve_parallelism ~jobs ~shards in
      with_telemetry ~trace ~json (fun tel ->
          let ts_oc = Option.map open_out timeseries_out in
          Option.iter
            (fun oc -> Telemetry.add_flusher tel (fun () -> Stdlib.flush oc))
            ts_oc;
          let render =
            if progress then Some (progress_renderer prof.Dialect.id)
            else None
          in
          let timeseries =
            if ts_oc = None && render = None then None
            else
              Some
                {
                  Timeseries.every_cases = 1000;
                  every_ms = 500;
                  emit =
                    (fun s ->
                      Option.iter (fun oc -> Timeseries.jsonl_emit oc s) ts_oc;
                      Option.iter (fun r -> r s) render);
                }
          in
          let r =
            Soft.Soft_runner.fuzz ?budget ~telemetry:tel ?timeseries
              ~memo:(not no_memo) ~compile:(not no_compile)
              ~compact:(not no_compact) ~stateful:(not no_stateful)
              ~batch:(not no_batch) ~shards ~jobs prof
          in
          if progress then prerr_newline ();
          Option.iter close_out ts_oc;
          Option.iter
            (Printf.printf "timeseries written to %s\n")
            timeseries_out;
          (match profile_out with
           | Some path ->
             let oc = open_out path in
             Profile.write_folded oc r.Soft.Soft_runner.profile;
             close_out oc;
             Printf.printf "folded attribution profile written to %s\n" path
           | None -> ());
          (match report with
           | Some path ->
             let oc = open_out path in
             output_string oc (Soft.Report.campaign_to_markdown r);
             close_out oc;
             Printf.printf "bug report written to %s\n" path
           | None -> ());
          Printf.printf "SOFT campaign against %s %s (simulated)\n"
            prof.Dialect.display prof.Dialect.version;
          Printf.printf "  seeds collected:      %d\n" r.Soft.Soft_runner.seeds_collected;
          Printf.printf "  substitution slots:   %d\n" r.Soft.Soft_runner.positions;
          Printf.printf "  statements executed:  %d\n" r.Soft.Soft_runner.cases_executed;
          if not no_stateful then begin
            Printf.printf "  stateful scenarios:   %d (%d prereq statements)\n"
              r.Soft.Soft_runner.scenarios_executed
              r.Soft.Soft_runner.prereq_statements;
            let sv = r.Soft.Soft_runner.stage_verdicts in
            Printf.printf
              "  crash verdicts by stage: parse %d / execute %d / storage %d\n"
              sv.Soft.Detector.parse sv.Soft.Detector.execute
              sv.Soft.Detector.storage
          end;
          Printf.printf "  cases memoized:       %d (%.1f%% hit rate)\n"
            r.Soft.Soft_runner.cases_memoized
            (100. *. Telemetry.memo_hit_rate r.Soft.Soft_runner.telemetry);
          (let cc = Telemetry.compile_counts r.Soft.Soft_runner.telemetry in
           Printf.printf
             "  plans compiled:       %d (%.1f%% plan-cache hit rate, %d \
              fallbacks)\n"
             cc.Telemetry.c_misses
             (100. *. Telemetry.compile_hit_rate r.Soft.Soft_runner.telemetry)
             cc.Telemetry.c_fallbacks);
          (let kc = Telemetry.compact_counts r.Soft.Soft_runner.telemetry in
           Printf.printf "  compact values:       %d built, %d spilled\n"
             kc.Telemetry.k_hits kc.Telemetry.k_spills);
          (let bc = Telemetry.batch_counts r.Soft.Soft_runner.telemetry in
           Printf.printf "  batched cases:        %d (%d family batches)\n"
             bc.Telemetry.b_cases bc.Telemetry.b_flushes);
          Printf.printf "  passed / clean errors: %d / %d\n" r.Soft.Soft_runner.passed
            r.Soft.Soft_runner.clean_errors;
          (* the paper's "7 false positives" counts unique reports, so both
             units are printed *)
          Printf.printf "  false positives:      %d (%d unique reports)\n"
            r.Soft.Soft_runner.false_positives
            r.Soft.Soft_runner.unique_false_positives;
          Printf.printf "  functions triggered:  %d\n" r.Soft.Soft_runner.functions_triggered;
          Printf.printf "  branches covered:     %d\n" r.Soft.Soft_runner.branches_covered;
          Printf.printf "  bugs found:           %d\n" (List.length r.Soft.Soft_runner.bugs);
          List.iter
            (fun b ->
              Printf.printf "    %s\n" (Soft.Soft_runner.bug_summary_line b);
              if verbose then
                Printf.printf "      note: %s\n" b.Soft.Detector.spec.Sqlfun_fault.Fault.note)
            r.Soft.Soft_runner.bugs;
          fun () -> Soft.Report.campaign_to_json r);
      0
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print bug notes.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write a markdown bug report for the campaign.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a SOFT campaign against a simulated dialect")
    Term.(const run $ dialect_arg $ budget_arg 0 $ jobs_arg $ shards_arg
          $ no_memo_arg $ no_compile_arg $ no_compact_arg $ no_stateful_arg
          $ no_batch_arg $ verbose $ report $ trace_arg $ json_arg
          $ profile_arg $ timeseries_arg $ progress_arg)

let study_cmd =
  let run () =
    print_string (Sqlfun_harness.Tables.table1 ());
    print_newline ();
    print_string (Sqlfun_harness.Tables.finding1 ());
    print_newline ();
    print_string (Sqlfun_harness.Tables.figure1 ());
    print_newline ();
    print_string (Sqlfun_harness.Tables.table2 ());
    print_newline ();
    print_string (Sqlfun_harness.Tables.finding3 ());
    print_string (Sqlfun_harness.Tables.finding4 ());
    print_newline ();
    print_string (Sqlfun_harness.Tables.root_causes ());
    0
  in
  Cmd.v
    (Cmd.info "study" ~doc:"Regenerate the 318-bug study statistics (Sections 4-5)")
    Term.(const run $ const ())

let compare_cmd =
  let run budget trace json =
    with_telemetry ~trace ~json (fun tel ->
        let runs =
          Sqlfun_harness.Compare.comparison ~telemetry:tel ~budget ()
        in
        print_string (Sqlfun_harness.Tables.table5 runs);
        print_newline ();
        print_string (Sqlfun_harness.Tables.table6 runs);
        print_newline ();
        print_string (Sqlfun_harness.Tables.bugs_in_budget runs);
        fun () ->
          Sqlfun_harness.Compare.comparison_to_json ~telemetry:tel ~budget runs);
    0
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Equal-budget comparison against SQUIRREL/SQLancer/SQLsmith")
    Term.(const run $ budget_arg 3000 $ trace_arg $ json_arg)

let tables_cmd =
  let run budget jobs shards =
    print_string (Sqlfun_harness.Tables.table3 ());
    print_newline ();
    let budget = if budget = 0 then None else Some budget in
    (* dialect campaigns parallelise across domains; tables are rendered
       from the merged per-dialect results, so the output is identical
       at any job count. Shards default to 1 here: campaign jobs are
       already one domain each, and nesting shard pools inside them
       would run jobs x (shards + 1) domains. *)
    let jobs =
      if jobs <= 0 then Domain.recommended_domain_count () else jobs
    in
    let shards = if shards <= 0 then 1 else shards in
    let results = Soft.Soft_runner.fuzz_all ?budget ~jobs ~shards () in
    print_string (Sqlfun_harness.Tables.table4 results);
    print_newline ();
    print_string (Sqlfun_harness.Tables.table4_totals results);
    print_newline ();
    print_string (Sqlfun_harness.Tables.figure2 results);
    0
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate Tables 3-4 and Figure 2")
    Term.(const run $ budget_arg 0 $ jobs_arg $ shards_arg)

let dialects_cmd =
  let run () =
    Printf.printf "%-12s %-10s %-9s %-6s %-5s %s\n" "dialect" "version"
      "casting" "json" "fns" "injected bugs";
    List.iter
      (fun p ->
        Printf.printf "%-12s %-10s %-9s %-6s %-5d %d\n" p.Dialect.id
          p.Dialect.version
          (match p.Dialect.strictness with
           | Sqlfun_value.Cast.Strict -> "strict"
           | Sqlfun_value.Cast.Lenient -> "lenient")
          (match p.Dialect.json_max_depth with
           | Some d -> string_of_int d
           | None -> "none")
          (List.length p.Dialect.functions)
          (List.length (Bug_ledger.for_dialect p.Dialect.id)))
      Dialect.all;
    0
  in
  Cmd.v
    (Cmd.info "dialects" ~doc:"List the simulated DBMS profiles")
    Term.(const run $ const ())

let logic_cmd =
  let run dialect budget =
    match resolve_dialect dialect with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok prof ->
      let budget = if budget = 0 then 300 else budget in
      let r = Sqlfun_harness.Logic_oracle.run ~budget prof in
      print_string (Sqlfun_harness.Logic_oracle.report_to_string r);
      if r.Sqlfun_harness.Logic_oracle.mismatches = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "logic"
       ~doc:
         "Run the correctness oracles (TLP partitioning, NoREC \
          re-execution, aggregate/array equivalence) against a dialect")
    Term.(const run $ dialect_arg $ budget_arg 300)

let repl_cmd =
  let run dialect armed =
    match resolve_dialect dialect with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok prof ->
      let engine = Dialect.make_engine ~armed prof in
      Printf.printf "%s %s (simulated)%s — terminate statements with ;\n"
        prof.Dialect.display prof.Dialect.version
        (if armed then " [injected bugs ARMED]" else "");
      let buf = Buffer.create 128 in
      (try
         while true do
           print_string (if Buffer.length buf = 0 then "sql> " else "  -> ");
           let line = read_line () in
           Buffer.add_string buf line;
           Buffer.add_char buf '\n';
           if String.contains line ';' then begin
             let sql = Buffer.contents buf in
             Buffer.clear buf;
             match Sqlfun_engine.Engine.exec_script engine sql with
             | Ok outcomes ->
               List.iter
                 (fun o ->
                   print_endline (Sqlfun_engine.Engine.outcome_to_string o))
                 outcomes
             | Error e ->
               print_endline (Sqlfun_engine.Engine.error_to_string e)
             | exception Sqlfun_fault.Fault.Crash spec ->
               Printf.printf
                 "*** server crashed: %s (%s) — restarting ***\n"
                 spec.Sqlfun_fault.Fault.site
                 (Sqlfun_fault.Bug_kind.describe spec.Sqlfun_fault.Fault.kind)
             | exception Stack_overflow ->
               print_endline "*** server crashed: stack overflow — restarting ***"
           end
         done;
         0
       with End_of_file -> 0)
  in
  let armed =
    Arg.(value & flag & info [ "armed" ] ~doc:"Enable the injected bugs.")
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive SQL session against a simulated dialect")
    Term.(const run $ dialect_arg $ armed)

let () =
  let doc = "SOFT: boundary-argument testing of (simulated) DBMS SQL functions" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "soft_cli" ~version:"1.0.0" ~doc)
          [ fuzz_cmd; study_cmd; compare_cmd; tables_cmd; logic_cmd;
            dialects_cmd; repl_cmd ]))
