open Sqlfun_data

let date s =
  match Calendar.date_of_string s with
  | Some d -> d
  | None -> Alcotest.failf "bad date %S" s

let dt s =
  match Calendar.datetime_of_string s with
  | Some d -> d
  | None -> Alcotest.failf "bad datetime %S" s

let test_leap_years () =
  Alcotest.(check bool) "2024" true (Calendar.is_leap_year 2024);
  Alcotest.(check bool) "1900" false (Calendar.is_leap_year 1900);
  Alcotest.(check bool) "2000" true (Calendar.is_leap_year 2000);
  Alcotest.(check bool) "2023" false (Calendar.is_leap_year 2023)

let test_days_in_month () =
  Alcotest.(check int) "feb leap" 29 (Calendar.days_in_month ~year:2024 ~month:2);
  Alcotest.(check int) "feb" 28 (Calendar.days_in_month ~year:2023 ~month:2);
  Alcotest.(check int) "apr" 30 (Calendar.days_in_month ~year:2023 ~month:4);
  Alcotest.(check int) "bad month" 0 (Calendar.days_in_month ~year:2023 ~month:13)

let test_parse_validity () =
  Alcotest.(check bool) "feb 30 invalid" true
    (Calendar.date_of_string "2023-02-30" = None);
  Alcotest.(check bool) "month 0" true (Calendar.date_of_string "2023-00-10" = None);
  Alcotest.(check bool) "leap ok" true
    (Calendar.date_of_string "2024-02-29" <> None);
  Alcotest.(check bool) "leap bad" true
    (Calendar.date_of_string "2023-02-29" = None);
  Alcotest.(check bool) "slash separators" true
    (Calendar.date_of_string "2023/05/17" <> None);
  Alcotest.(check bool) "garbage" true (Calendar.date_of_string "yesterday" = None);
  Alcotest.(check bool) "year 0" true (Calendar.date_of_string "0000-01-01" = None)

let test_to_string () =
  Alcotest.(check string) "date" "2023-05-07" (Calendar.date_to_string (date "2023-5-7"));
  Alcotest.(check string) "datetime" "2023-05-07 09:30:00"
    (Calendar.datetime_to_string (dt "2023-05-07 9:30"))

let test_julian_roundtrip () =
  let d = date "2023-05-17" in
  (match Calendar.of_julian_day (Calendar.to_julian_day d) with
   | Some d2 -> Alcotest.(check string) "roundtrip" "2023-05-17" (Calendar.date_to_string d2)
   | None -> Alcotest.fail "julian roundtrip");
  Alcotest.(check int) "known JDN of 2000-01-01" 2451545
    (Calendar.to_julian_day (date "2000-01-01"))

let test_add_days () =
  let d = date "2023-12-31" in
  (match Calendar.add_days d 1 with
   | Some d2 -> Alcotest.(check string) "year rollover" "2024-01-01" (Calendar.date_to_string d2)
   | None -> Alcotest.fail "add_days");
  (match Calendar.add_days (date "2024-03-01") (-1) with
   | Some d2 -> Alcotest.(check string) "leap back" "2024-02-29" (Calendar.date_to_string d2)
   | None -> Alcotest.fail "add_days back");
  match Calendar.add_days (date "9999-12-31") 1 with
  | None -> ()
  | Some _ -> Alcotest.fail "out of range must be None"

let test_diff_and_dow () =
  Alcotest.(check int) "diff" 365
    (Calendar.diff_days (date "2024-01-01") (date "2023-01-01"));
  Alcotest.(check int) "sunday" 0 (Calendar.day_of_week (date "2023-01-01"));
  Alcotest.(check int) "monday" 1 (Calendar.day_of_week (date "2023-01-02"));
  Alcotest.(check int) "doy" 32 (Calendar.day_of_year (date "2023-02-01"))

let test_last_day () =
  Alcotest.(check string) "last day feb" "2024-02-29"
    (Calendar.date_to_string (Calendar.last_day (date "2024-02-15")))

let test_add_interval () =
  let add s amount unit_ =
    match Calendar.add_interval (dt s) { Calendar.amount; unit_ } with
    | Some r -> Calendar.datetime_to_string r
    | None -> "overflow"
  in
  Alcotest.(check string) "add month clamps" "2023-02-28 00:00:00"
    (add "2023-01-31" 1L Calendar.Month);
  Alcotest.(check string) "add year" "2025-03-01 00:00:00"
    (add "2024-03-01" 1L Calendar.Year);
  Alcotest.(check string) "add hours crosses day" "2023-01-02 01:00:00"
    (add "2023-01-01 23:00:00" 2L Calendar.Hour);
  Alcotest.(check string) "negative seconds" "2022-12-31 23:59:59"
    (add "2023-01-01 00:00:00" (-1L) Calendar.Second);
  Alcotest.(check string) "interval overflow" "overflow"
    (add "2023-01-01" 99999999L Calendar.Year)

let test_units () =
  Alcotest.(check bool) "unit parse" true
    (Calendar.unit_of_string "days" = Some Calendar.Day);
  Alcotest.(check bool) "unit bad" true (Calendar.unit_of_string "fortnight" = None);
  Alcotest.(check string) "unit print" "MONTH" (Calendar.unit_to_string Calendar.Month)

let test_compare () =
  Alcotest.(check bool) "date lt" true
    (Calendar.compare_date (date "2023-01-01") (date "2023-01-02") < 0);
  Alcotest.(check bool) "datetime time part" true
    (Calendar.compare_datetime (dt "2023-01-01 01:00:00") (dt "2023-01-01 02:00:00") < 0)

(* property: add_days n then -n is identity within range *)
let prop_add_days_inverse =
  QCheck.Test.make ~name:"calendar add_days inverse" ~count:300
    QCheck.(pair (int_range 1700000 2500000) (int_range (-10000) 10000))
    (fun (jd, n) ->
      match Calendar.of_julian_day jd with
      | None -> QCheck.assume_fail ()
      | Some d ->
        (match Calendar.add_days d n with
         | None -> true (* left the supported range; nothing to check *)
         | Some d2 -> Calendar.diff_days d2 d = n))

(* the digit-writer rendering must stay byte-identical to the sprintf
   it replaced, across boundary dates (year 1, 9999, leap days, month
   and day-of-month edges) and every time-of-day edge *)
let prop_to_string_matches_sprintf =
  QCheck.Test.make ~name:"calendar to_string equals sprintf" ~count:500
    QCheck.(
      pair
        (int_range 1721426 5373484) (* JDN of year 1 .. 9999 *)
        (triple (int_range 0 23) (int_range 0 59) (int_range 0 59)))
    (fun (jd, (hour, minute, second)) ->
      match Calendar.of_julian_day jd with
      | None -> false
      | Some d ->
        let t =
          match Calendar.make_time ~hour ~minute ~second with
          | Some t -> t
          | None -> assert false
        in
        Calendar.date_to_string d
        = Printf.sprintf "%04d-%02d-%02d" d.Calendar.year d.Calendar.month
            d.Calendar.day
        && Calendar.time_to_string t
           = Printf.sprintf "%02d:%02d:%02d" t.Calendar.hour t.Calendar.minute
               t.Calendar.second)

let test_to_string_boundary_sample () =
  List.iter
    (fun s ->
      let d = date s in
      Alcotest.(check string) s
        (Printf.sprintf "%04d-%02d-%02d" d.Calendar.year d.Calendar.month
           d.Calendar.day)
        (Calendar.date_to_string d))
    [
      "0001-01-01"; "0009-09-09"; "0099-12-31"; "0100-01-01"; "0999-02-28";
      "1000-01-01"; "1582-10-15"; "1900-02-28"; "2000-02-29"; "2024-02-29";
      "9999-12-31";
    ];
  List.iter
    (fun s ->
      match Calendar.time_of_string s with
      | None -> Alcotest.failf "bad time %S" s
      | Some t ->
        Alcotest.(check string) s
          (Printf.sprintf "%02d:%02d:%02d" t.Calendar.hour t.Calendar.minute
             t.Calendar.second)
          (Calendar.time_to_string t))
    [ "00:00:00"; "00:00:01"; "09:09:09"; "10:10:10"; "23:59:59" ]

let prop_julian_roundtrip =
  QCheck.Test.make ~name:"calendar julian roundtrip" ~count:300
    QCheck.(int_range 1721426 5373484) (* year 1 .. 9999 *)
    (fun jd ->
      match Calendar.of_julian_day jd with
      | None -> false
      | Some d -> Calendar.to_julian_day d = jd)

let suite =
  ( "calendar",
    [
      Alcotest.test_case "leap years" `Quick test_leap_years;
      Alcotest.test_case "days in month" `Quick test_days_in_month;
      Alcotest.test_case "parse validity" `Quick test_parse_validity;
      Alcotest.test_case "to_string" `Quick test_to_string;
      Alcotest.test_case "julian roundtrip" `Quick test_julian_roundtrip;
      Alcotest.test_case "add days" `Quick test_add_days;
      Alcotest.test_case "diff and day-of-week" `Quick test_diff_and_dow;
      Alcotest.test_case "last day" `Quick test_last_day;
      Alcotest.test_case "add interval" `Quick test_add_interval;
      Alcotest.test_case "units" `Quick test_units;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "to_string boundary sample" `Quick
        test_to_string_boundary_sample;
      QCheck_alcotest.to_alcotest prop_add_days_inverse;
      QCheck_alcotest.to_alcotest prop_to_string_matches_sprintf;
      QCheck_alcotest.to_alcotest prop_julian_roundtrip;
    ] )
