(* The parallel layer and the determinism contract of sharded campaigns.

   The load-bearing property is at the bottom: a campaign sharded across
   4 worker domains must produce verdict counters, bug lists (order and
   case numbers included) and FP-signature sets bit-identical to the
   sequential run. Everything above it tests the pieces that property is
   assembled from — the pool, the chunked queue, the budget split, and
   the merge algebra on coverage and telemetry. *)

module Pool = Sqlfun_parallel.Pool
module Chunk_queue = Sqlfun_parallel.Chunk_queue
module Coverage = Sqlfun_coverage.Coverage
module Telemetry = Sqlfun_telemetry.Telemetry
open Sqlfun_dialects

(* ----- Pool ----- *)

let test_pool_runs_jobs () =
  let results =
    Pool.with_pool 4 (fun pool ->
        Pool.run pool (List.init 20 (fun i () -> i * i)))
  in
  Alcotest.(check (list int)) "results in submission order"
    (List.init 20 (fun i -> i * i))
    results

let test_pool_propagates_exceptions () =
  Alcotest.check_raises "await re-raises the job's exception"
    (Failure "boom")
    (fun () ->
      ignore
        (Pool.with_pool 2 (fun pool ->
             Pool.run pool
               [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ])))

let test_pool_parallel_sum () =
  (* jobs > domains and domains > jobs both drain fully *)
  List.iter
    (fun jobs ->
      let counter = Atomic.make 0 in
      Pool.with_pool jobs (fun pool ->
          ignore
            (Pool.run pool
               (List.init 100 (fun i () -> Atomic.fetch_and_add counter i))));
      Alcotest.(check int)
        (Printf.sprintf "all 100 jobs ran at jobs=%d" jobs)
        (100 * 99 / 2) (Atomic.get counter))
    [ 1; 3; 8 ]

(* ----- Chunk_queue ----- *)

let test_queue_preserves_order () =
  let q = Chunk_queue.create ~chunk_size:7 ~max_chunks:4 () in
  let n = 1000 in
  let consumer =
    Domain.spawn (fun () ->
        let out = ref [] in
        let rec drain () =
          match Chunk_queue.pop_chunk q with
          | None -> List.rev !out
          | Some chunk ->
            Array.iter (fun x -> out := x :: !out) chunk;
            drain ()
        in
        drain ())
  in
  for i = 1 to n do
    Chunk_queue.push q i
  done;
  Chunk_queue.close q;
  Alcotest.(check (list int)) "FIFO across chunk boundaries"
    (List.init n (fun i -> i + 1))
    (Domain.join consumer)

let test_queue_close_flushes_partial_chunk () =
  let q = Chunk_queue.create ~chunk_size:64 ~max_chunks:2 () in
  Chunk_queue.push q "only";
  Chunk_queue.close q;
  (match Chunk_queue.pop_chunk q with
   | Some [| "only" |] -> ()
   | Some _ -> Alcotest.fail "wrong chunk contents"
   | None -> Alcotest.fail "partial chunk lost on close");
  Alcotest.(check bool) "drained" true (Chunk_queue.pop_chunk q = None)

(* ----- split_budget (satellite a) ----- *)

let test_split_budget_exact () =
  let check b n =
    let shares = Soft.Soft_runner.split_budget b n in
    Alcotest.(check int)
      (Printf.sprintf "n entries (b=%d n=%d)" b n)
      n (List.length shares);
    Alcotest.(check int)
      (Printf.sprintf "shares sum to budget (b=%d n=%d)" b n)
      b
      (List.fold_left ( + ) 0 shares);
    (* remainder spread: entries differ by at most one, larger first *)
    List.iter
      (fun s ->
        Alcotest.(check bool) "share within one of b/n" true
          (s = (b / n) || s = (b / n) + 1))
      shares;
    Alcotest.(check bool) "larger shares first" true
      (List.sort (fun a b -> compare b a) shares = shares)
  in
  check 10 10;
  check 9 10;
  check 11 10;
  check 2005 10;
  check 3 7;
  check 0 5;
  Alcotest.(check (list int)) "n=0 is empty" [] (Soft.Soft_runner.split_budget 5 0)

let test_split_budget_qcheck () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:500 ~name:"split_budget sums to budget"
       QCheck.(pair (int_bound 100_000) (int_range 1 64))
       (fun (b, n) ->
         let shares = Soft.Soft_runner.split_budget b n in
         List.length shares = n && List.fold_left ( + ) 0 shares = b))

let test_budgeted_campaign_executes_exact_budget () =
  (* the end-to-end view of satellite (a): a budget smaller than, equal
     to, and not divisible by the pattern count all execute exactly
     [budget] generated cases (seed replays are on top, so compare
     against the unbudgeted seed count) *)
  let prof = Dialect.find_exn "mariadb" in
  let seed_replays =
    (Soft.Soft_runner.fuzz ~budget:0 prof).Soft.Soft_runner.cases_executed
  in
  List.iter
    (fun budget ->
      let r = Soft.Soft_runner.fuzz ~budget prof in
      Alcotest.(check int)
        (Printf.sprintf "budget %d executes exactly" budget)
        (seed_replays + budget)
        r.Soft.Soft_runner.cases_executed)
    [ 3; 10; 2005 ]

(* ----- merge algebra (satellite c) ----- *)

let mk_cov points =
  let c = Coverage.create () in
  List.iter (fun (p, hits) -> for _ = 1 to hits do Coverage.hit c p done) points;
  c

let cov_gen =
  QCheck.Gen.(
    map mk_cov
      (list_size (int_bound 8)
         (pair (map (Printf.sprintf "pt%d") (int_bound 5)) (int_range 1 4))))

let test_coverage_merge_algebra () =
  let eq a b = Coverage.points a = Coverage.points b in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"coverage merge commutative"
       (QCheck.make QCheck.Gen.(pair cov_gen cov_gen))
       (fun (a, b) -> eq (Coverage.merge a b) (Coverage.merge b a)));
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"coverage merge associative"
       (QCheck.make QCheck.Gen.(triple cov_gen cov_gen cov_gen))
       (fun (a, b, c) ->
         eq
           (Coverage.merge (Coverage.merge a b) c)
           (Coverage.merge a (Coverage.merge b c))));
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"fresh recorder is identity"
       (QCheck.make cov_gen)
       (fun a ->
         eq (Coverage.merge a (Coverage.create ())) a
         && eq (Coverage.merge (Coverage.create ()) a) a))

(* a telemetry collector is observed through its two aggregate views *)
let tel_view t = (Telemetry.stage_timings t, Telemetry.verdict_rows t)

let mk_tel spec =
  let t = Telemetry.create () in
  List.iter
    (fun (stage, dur, verdict) ->
      Telemetry.record_stage t ~stage dur;
      Telemetry.count_verdict t ~dialect:"d" ~pattern:stage ~case_number:1
        verdict)
    spec;
  t

let tel_gen =
  QCheck.Gen.(
    map mk_tel
      (list_size (int_bound 8)
         (triple
            (map (Printf.sprintf "s%d") (int_bound 3))
            (int_range 1 1_000_000)
            (oneofl Telemetry.verdict_classes))))

let test_telemetry_merge_algebra () =
  let eq a b = tel_view a = tel_view b in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"telemetry merge commutative"
       (QCheck.make QCheck.Gen.(pair tel_gen tel_gen))
       (fun (a, b) -> eq (Telemetry.merge a b) (Telemetry.merge b a)));
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"telemetry merge associative"
       (QCheck.make QCheck.Gen.(triple tel_gen tel_gen tel_gen))
       (fun (a, b, c) ->
         eq
           (Telemetry.merge (Telemetry.merge a b) c)
           (Telemetry.merge a (Telemetry.merge b c))));
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"fresh collector is identity"
       (QCheck.make tel_gen)
       (fun a ->
         eq (Telemetry.merge a (Telemetry.create ())) a
         && eq (Telemetry.merge (Telemetry.create ()) a) a))

let test_reclassify_verdict () =
  let t = Telemetry.create () in
  Telemetry.count_verdict t ~dialect:"d" ~pattern:"p" ~case_number:1
    Telemetry.New_bug;
  Telemetry.reclassify_verdict t ~dialect:"d" ~pattern:"p"
    ~from_:Telemetry.New_bug ~to_:Telemetry.Dup_bug;
  let row =
    List.find
      (fun (r : Telemetry.verdict_counts) -> r.Telemetry.pattern = "p")
      (Telemetry.verdict_rows t)
  in
  Alcotest.(check int) "New_bug drained" 0
    (List.assoc Telemetry.New_bug row.Telemetry.by_class);
  Alcotest.(check int) "Dup_bug gained" 1
    (List.assoc Telemetry.Dup_bug row.Telemetry.by_class);
  Alcotest.check_raises "underflow rejected"
    (Invalid_argument
       "Telemetry.reclassify_verdict: no new_bug verdict recorded for d/p")
    (fun () ->
      Telemetry.reclassify_verdict t ~dialect:"d" ~pattern:"p"
        ~from_:Telemetry.New_bug ~to_:Telemetry.Dup_bug)

(* ----- campaign determinism (tentpole + satellites c/d) ----- *)

let bug_key (b : Soft.Detector.found_bug) =
  ( b.Soft.Detector.spec.Sqlfun_fault.Fault.site,
    b.Soft.Detector.case_number,
    b.Soft.Detector.found_by,
    b.Soft.Detector.poc )

(* every deterministic field of a campaign result, for field-for-field
   comparison (coverage hit counts are excluded by design: k shard
   engines arm independently, which inflates arming-path hit counts —
   the distinct point sets still agree and are compared) *)
let result_key (r : Soft.Soft_runner.result) =
  ( ( r.Soft.Soft_runner.seeds_collected,
      r.Soft.Soft_runner.positions,
      r.Soft.Soft_runner.cases_executed,
      r.Soft.Soft_runner.passed,
      r.Soft.Soft_runner.clean_errors ),
    ( r.Soft.Soft_runner.false_positives,
      r.Soft.Soft_runner.unique_false_positives,
      r.Soft.Soft_runner.fp_signatures,
      r.Soft.Soft_runner.known_crashes ),
    ( r.Soft.Soft_runner.scenarios_executed,
      r.Soft.Soft_runner.prereq_statements,
      r.Soft.Soft_runner.stage_verdicts ),
    ( List.map bug_key r.Soft.Soft_runner.bugs,
      r.Soft.Soft_runner.functions_triggered,
      r.Soft.Soft_runner.branches_covered,
      List.map fst (Coverage.points r.Soft.Soft_runner.coverage) ) )

let verdict_key tel =
  List.map
    (fun (r : Telemetry.verdict_counts) ->
      (r.Telemetry.dialect, r.Telemetry.pattern, r.Telemetry.by_class))
    (Telemetry.verdict_rows tel)

let test_shards_one_equals_sequential () =
  (* shards=1 routes through the queue/worker/merge machinery; it must
     agree with the plain sequential path field for field *)
  let prof = Dialect.find_exn "mariadb" in
  let seq = Soft.Soft_runner.fuzz ~budget:1500 prof in
  let sh = Soft.Soft_runner.fuzz_sharded ~budget:1500 ~shards:1 prof in
  Alcotest.(check bool) "result fields agree" true
    (result_key seq = result_key sh);
  Alcotest.(check bool) "verdict counters agree" true
    (verdict_key seq.Soft.Soft_runner.telemetry
    = verdict_key sh.Soft.Soft_runner.telemetry)

let test_sharded_campaign_deterministic () =
  (* the ISSUE's gating regression: jobs=1/shards=1 vs jobs=4/shards=4
     on a real campaign — identical verdict counters, identical bug
     lists (order and case numbers included), identical FP signatures *)
  let prof = Dialect.find_exn "mysql" in
  let seq = Soft.Soft_runner.fuzz ~budget:4000 ~shards:1 ~jobs:1 prof in
  let par = Soft.Soft_runner.fuzz ~budget:4000 ~shards:4 ~jobs:4 prof in
  Alcotest.(check bool) "bugs found" true (seq.Soft.Soft_runner.bugs <> []);
  Alcotest.(check (list (triple string int (option string))))
    "bug lists identical, order included"
    (List.map
       (fun (b : Soft.Detector.found_bug) ->
         ( b.Soft.Detector.spec.Sqlfun_fault.Fault.site,
           b.Soft.Detector.case_number,
           Option.map Sqlfun_fault.Pattern_id.to_string b.Soft.Detector.found_by ))
       seq.Soft.Soft_runner.bugs)
    (List.map
       (fun (b : Soft.Detector.found_bug) ->
         ( b.Soft.Detector.spec.Sqlfun_fault.Fault.site,
           b.Soft.Detector.case_number,
           Option.map Sqlfun_fault.Pattern_id.to_string b.Soft.Detector.found_by ))
       par.Soft.Soft_runner.bugs);
  Alcotest.(check (list string))
    "unique FP signatures identical" seq.Soft.Soft_runner.fp_signatures
    par.Soft.Soft_runner.fp_signatures;
  Alcotest.(check bool) "all result fields agree" true
    (result_key seq = result_key par);
  Alcotest.(check bool) "verdict counters identical" true
    (verdict_key seq.Soft.Soft_runner.telemetry
    = verdict_key par.Soft.Soft_runner.telemetry)

let test_more_shards_than_jobs () =
  (* jobs < shards exercises the multi-shard-per-worker queues *)
  let prof = Dialect.find_exn "postgresql" in
  let seq = Soft.Soft_runner.fuzz ~budget:1200 prof in
  let par = Soft.Soft_runner.fuzz ~budget:1200 ~shards:7 ~jobs:2 prof in
  Alcotest.(check bool) "7 shards on 2 workers matches sequential" true
    (result_key seq = result_key par)

let test_memo_invariant_under_sharding () =
  (* memoization must be invisible to every result field at any
     jobs/shards combination — each shard caches privately, so this
     exercises cache state that a sequential run never builds *)
  let prof = Dialect.find_exn "duckdb" in
  let baseline = Soft.Soft_runner.fuzz ~budget:2000 ~memo:false prof in
  List.iter
    (fun (shards, jobs) ->
      let r = Soft.Soft_runner.fuzz ~budget:2000 ~memo:true ~shards ~jobs prof in
      Alcotest.(check bool)
        (Printf.sprintf "memo-on shards=%d jobs=%d matches memo-off" shards jobs)
        true
        (result_key baseline = result_key r);
      Alcotest.(check bool) "verdict counters agree" true
        (verdict_key baseline.Soft.Soft_runner.telemetry
        = verdict_key r.Soft.Soft_runner.telemetry))
    [ (1, 1); (2, 2) ]

let test_stateful_sharded_deterministic () =
  (* the stateful gating regression: a scenario is one atomic work item,
     so sequential vs jobs=2/shards=2 must agree on every deterministic
     field — scenario counters and per-stage verdict attribution
     included — and the campaign must surface verdicts from all three
     occurrence stages *)
  let prof = Dialect.find_exn "duckdb" in
  let seq = Soft.Soft_runner.fuzz ~budget:2000 ~shards:1 ~jobs:1 prof in
  let par = Soft.Soft_runner.fuzz ~budget:2000 ~shards:2 ~jobs:2 prof in
  Alcotest.(check bool) "scenarios ran" true
    (seq.Soft.Soft_runner.scenarios_executed > 0);
  let sv = seq.Soft.Soft_runner.stage_verdicts in
  Alcotest.(check bool) "parse-stage verdicts surfaced" true
    (sv.Soft.Detector.parse > 0);
  Alcotest.(check bool) "execute-stage verdicts surfaced" true
    (sv.Soft.Detector.execute > 0);
  Alcotest.(check bool) "storage-stage verdicts surfaced" true
    (sv.Soft.Detector.storage > 0);
  Alcotest.(check bool) "sharded stateful run matches sequential" true
    (result_key seq = result_key par);
  Alcotest.(check bool) "verdict counters agree" true
    (verdict_key seq.Soft.Soft_runner.telemetry
    = verdict_key par.Soft.Soft_runner.telemetry)

let test_batched_sharded_deterministic () =
  (* the batch gating regression: a family batch is split by member
     across shards along the per-case round-robin, so batch-on at any
     jobs/shards combination must match the batch-off sequential run on
     every result field — and batches must actually execute on the
     sharded legs for the check to mean anything *)
  let prof = Dialect.find_exn "clickhouse" in
  let baseline = Soft.Soft_runner.fuzz ~budget:3000 ~batch:false prof in
  List.iter
    (fun (shards, jobs) ->
      let r =
        Soft.Soft_runner.fuzz ~budget:3000 ~batch:true ~shards ~jobs prof
      in
      Alcotest.(check bool)
        (Printf.sprintf "batch-on shards=%d jobs=%d matches batch-off"
           shards jobs)
        true
        (result_key baseline = result_key r);
      Alcotest.(check bool) "verdict counters agree" true
        (verdict_key baseline.Soft.Soft_runner.telemetry
        = verdict_key r.Soft.Soft_runner.telemetry);
      let bc =
        Sqlfun_telemetry.Telemetry.batch_counts r.Soft.Soft_runner.telemetry
      in
      Alcotest.(check bool) "batches executed" true
        (bc.Sqlfun_telemetry.Telemetry.b_cases > 0))
    [ (1, 1); (3, 2); (4, 4) ]

let test_timeseries_final_snapshot_shard_invariant () =
  (* the campaign-final timeseries snapshot (shard = -1) is computed
     from the deterministically merged totals, so its
     determinism-relevant fields must be identical at any shard/job
     count — only rates and timestamps may differ *)
  let module Timeseries = Sqlfun_telemetry.Timeseries in
  let final_of shards jobs =
    let captured = ref None in
    let cfg =
      {
        Timeseries.every_cases = 500;
        every_ms = 0;
        emit =
          (fun s -> if s.Timeseries.shard = -1 then captured := Some s);
      }
    in
    let prof = Dialect.find_exn "mariadb" in
    let r = Soft.Soft_runner.fuzz ~budget:2000 ~timeseries:cfg ~shards ~jobs prof in
    match !captured with
    | Some s -> (r, s)
    | None -> Alcotest.fail "campaign-final snapshot never emitted"
  in
  let r_seq, seq = final_of 1 1 in
  let _, par = final_of 3 3 in
  let key (s : Timeseries.snapshot) =
    ( s.Timeseries.cases,
      s.Timeseries.branches,
      s.Timeseries.functions,
      s.Timeseries.new_bugs,
      s.Timeseries.dup_bugs )
  in
  Alcotest.(check (list int)) "final snapshot shard-invariant"
    (let (a, b, c, d, e) = key seq in [ a; b; c; d; e ])
    (let (a, b, c, d, e) = key par in [ a; b; c; d; e ]);
  Alcotest.(check int) "final cases = campaign total"
    r_seq.Soft.Soft_runner.cases_executed seq.Timeseries.cases;
  Alcotest.(check int) "final branches = campaign total"
    r_seq.Soft.Soft_runner.branches_covered seq.Timeseries.branches;
  Alcotest.(check int) "final new_bugs = campaign total"
    (List.length r_seq.Soft.Soft_runner.bugs) seq.Timeseries.new_bugs;
  (* the sharded final also accounts every executed case to a shard *)
  Alcotest.(check int) "shard_cases sums to cases" par.Timeseries.cases
    (Array.fold_left ( + ) 0 par.Timeseries.shard_cases)

let test_fuzz_all_parallel_deterministic () =
  let seq = Soft.Soft_runner.fuzz_all ~budget:400 () in
  let par = Soft.Soft_runner.fuzz_all ~budget:400 ~jobs:4 ~shards:2 () in
  List.iter2
    (fun (a : Soft.Soft_runner.result) b ->
      Alcotest.(check bool)
        (a.Soft.Soft_runner.dialect.Dialect.id ^ " campaign identical")
        true
        (result_key a = result_key b))
    seq par

let suite =
  ( "parallel",
    [
      Alcotest.test_case "pool runs jobs in order" `Quick test_pool_runs_jobs;
      Alcotest.test_case "pool propagates exceptions" `Quick
        test_pool_propagates_exceptions;
      Alcotest.test_case "pool drains at any job count" `Quick
        test_pool_parallel_sum;
      Alcotest.test_case "chunk queue preserves order" `Quick
        test_queue_preserves_order;
      Alcotest.test_case "chunk queue close flushes" `Quick
        test_queue_close_flushes_partial_chunk;
      Alcotest.test_case "split_budget exact" `Quick test_split_budget_exact;
      Alcotest.test_case "split_budget qcheck" `Quick test_split_budget_qcheck;
      Alcotest.test_case "budget executed exactly" `Slow
        test_budgeted_campaign_executes_exact_budget;
      Alcotest.test_case "coverage merge algebra" `Quick
        test_coverage_merge_algebra;
      Alcotest.test_case "telemetry merge algebra" `Quick
        test_telemetry_merge_algebra;
      Alcotest.test_case "reclassify verdict" `Quick test_reclassify_verdict;
      Alcotest.test_case "shards=1 equals sequential" `Slow
        test_shards_one_equals_sequential;
      Alcotest.test_case "4-shard campaign deterministic" `Slow
        test_sharded_campaign_deterministic;
      Alcotest.test_case "more shards than jobs" `Slow
        test_more_shards_than_jobs;
      Alcotest.test_case "stateful campaign shard-deterministic" `Slow
        test_stateful_sharded_deterministic;
      Alcotest.test_case "memo invariant under sharding" `Slow
        test_memo_invariant_under_sharding;
      Alcotest.test_case "batched campaign shard-deterministic" `Slow
        test_batched_sharded_deterministic;
      Alcotest.test_case "timeseries final snapshot shard-invariant" `Slow
        test_timeseries_final_snapshot_shard_invariant;
      Alcotest.test_case "parallel fuzz_all deterministic" `Slow
        test_fuzz_all_parallel_deterministic;
    ] )
