open Sqlfun_ast
open Sqlfun_fault
open Sqlfun_dialects

let registry_of dialect = Dialect.registry (Dialect.find_exn dialect)

let seeds_for dialect =
  let prof = Dialect.find_exn dialect in
  Soft.Collector.collect ~registry:(registry_of dialect) ~suite:prof.Dialect.seeds ()

(* ----- boundary pool ----- *)

let test_pool_composition () =
  let pool = Soft.Boundary_pool.all () in
  Alcotest.(check bool) "has NULL" true (List.mem Ast.Null pool);
  Alcotest.(check bool) "has empty string" true (List.mem (Ast.Str_lit "") pool);
  Alcotest.(check bool) "has star" true (List.mem Ast.Star pool);
  (* digit lengths are enumerated rather than one extreme *)
  Alcotest.(check bool) "has 5-digit nines" true
    (List.mem (Ast.Int_lit "99999") pool);
  Alcotest.(check bool) "has 35-digit nines" true
    (List.mem (Ast.Int_lit (String.make 35 '9')) pool);
  Alcotest.(check bool) "has negative decimals" true
    (List.mem (Ast.Dec_lit ("-0." ^ String.make 10 '9')) pool);
  (* pool literals stay below P1.3's splice range so trigger ranges are
     disjoint *)
  List.iter
    (fun e ->
      match e with
      | Ast.Int_lit s | Ast.Dec_lit s ->
        Alcotest.(check bool) "literal under 40 digits" true (String.length s < 40)
      | _ -> ())
    pool

(* ----- collector ----- *)

let test_collector () =
  let seeds = seeds_for "mariadb" in
  Alcotest.(check bool) "collects many seeds" true (List.length seeds > 100);
  let docs, suite =
    List.partition (fun s -> s.Soft.Collector.source = Soft.Collector.Docs) seeds
  in
  Alcotest.(check bool) "docs seeds" true (List.length docs > 80);
  Alcotest.(check bool) "suite seeds" true (List.length suite > 20);
  (* every seed contains at least one known function call *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "seed has a call" true
        (Ast_util.count_function_exprs s.Soft.Collector.stmt >= 1))
    seeds;
  (* prerequisites keep only DDL/DML *)
  let prof = Dialect.find_exn "mariadb" in
  let prereqs = Soft.Collector.prerequisites prof.Dialect.seeds in
  Alcotest.(check int) "4 prerequisites" 4 (List.length prereqs)

let test_donors_distinct () =
  let seeds = seeds_for "mysql" in
  let donors = Soft.Collector.donors seeds in
  let printed = List.map (fun c -> Sql_pp.expr (Ast.Call c)) donors in
  Alcotest.(check int) "donors unique" (List.length printed)
    (List.length (List.sort_uniq String.compare printed))

(* ----- patterns ----- *)

let gen dialect pattern =
  Soft.Patterns.generate ~registry:(registry_of dialect) ~seeds:(seeds_for dialect)
    pattern
  |> List.of_seq

let test_p1_2_substitutes_pool () =
  let cases = gen "mariadb" Pattern_id.P1_2 in
  Alcotest.(check bool) "many cases" true (List.length cases > 1000);
  (* some case must be SELECT with a star argument in a function *)
  Alcotest.(check bool) "has star substitution" true
    (List.exists
       (fun (c : Soft.Patterns.case) ->
         Ast_util.fold_stmt_exprs
           (fun acc e ->
             acc
             || match e with
                | Ast.Call { args; _ } -> List.mem Ast.Star args
                | _ -> false)
           false c.Soft.Patterns.stmt)
       cases)

let test_p1_3_splices_digits () =
  let cases = gen "mariadb" Pattern_id.P1_3 in
  Alcotest.(check bool) "nonempty" true (cases <> []);
  List.iter
    (fun (c : Soft.Patterns.case) ->
      Alcotest.(check bool) "mentions digit run" true
        (Ast_util.fold_stmt_exprs
           (fun acc e ->
             acc
             ||
             match e with
             | Ast.Str_lit s ->
               let contains hay needle =
                 let nh = String.length hay and nn = String.length needle in
                 let rec go i =
                   i + nn <= nh
                   && (String.sub hay i nn = needle || go (i + 1))
                 in
                 go 0
               in
               contains s "99999"
             | Ast.Int_lit s | Ast.Dec_lit s -> String.length s >= 6
             | _ -> false)
           false c.Soft.Patterns.stmt))
    (List.filteri (fun i _ -> i < 20) cases)

let test_p2_1_casts () =
  let cases = gen "mariadb" Pattern_id.P2_1 in
  Alcotest.(check bool) "every case contains a cast" true
    (List.for_all
       (fun (c : Soft.Patterns.case) ->
         Ast_util.fold_stmt_exprs
           (fun acc e -> acc || match e with Ast.Cast _ -> true | _ -> false)
           false c.Soft.Patterns.stmt)
       cases)

let test_p2_2_unions () =
  let cases = gen "mariadb" Pattern_id.P2_2 in
  Alcotest.(check bool) "every case contains a subquery union" true
    (List.for_all
       (fun (c : Soft.Patterns.case) ->
         Ast_util.fold_stmt_exprs
           (fun acc e ->
             acc
             ||
             match e with
             | Ast.Subquery { body = Ast.Body_union _; _ } -> true
             | _ -> false)
           false c.Soft.Patterns.stmt)
       cases)

let test_p2_3_literal_donors () =
  (* donor arglists must be literal-only (nested calls are P3.3) *)
  let cases = gen "monetdb" Pattern_id.P2_3 in
  Alcotest.(check bool) "nonempty" true (cases <> [])

let test_p3_1_repeats () =
  let cases = gen "mariadb" Pattern_id.P3_1 in
  Alcotest.(check bool) "every case calls REPEAT" true
    (List.for_all
       (fun (c : Soft.Patterns.case) ->
         List.exists
           (fun (call : Ast.call) -> call.Ast.fname = "REPEAT")
           (Ast_util.function_calls c.Soft.Patterns.stmt))
       cases);
  (* the huge count that produces the paper's false positives is present *)
  Alcotest.(check bool) "has the 9999999999 count" true
    (List.exists
       (fun (c : Soft.Patterns.case) ->
         Ast_util.fold_stmt_exprs
           (fun acc e -> acc || e = Ast.Int_lit "9999999999")
           false c.Soft.Patterns.stmt)
       cases)

let test_p3_nesting_cap () =
  (* statements with > 2 function exprs are not expanded (Finding 3) *)
  List.iter
    (fun pattern ->
      let cases = gen "mariadb" pattern in
      List.iter
        (fun (c : Soft.Patterns.case) ->
          match Sqlfun_parse.Parser.parse_stmt c.Soft.Patterns.origin with
          | Ok origin_stmt ->
            Alcotest.(check bool) "origin had <= 2 calls" true
              (Ast_util.count_function_exprs origin_stmt <= 2)
          | Error _ -> ())
        (List.filteri (fun i _ -> i < 50) cases))
    [ Pattern_id.P3_2; Pattern_id.P3_3 ]

let test_all_generated_statements_parse () =
  (* print -> parse round trip for generated cases, sampled per pattern *)
  List.iter
    (fun pattern ->
      let cases = gen "mysql" pattern in
      List.iteri
        (fun i (c : Soft.Patterns.case) ->
          if i mod 97 = 0 then begin
            let sql = Sql_pp.stmt c.Soft.Patterns.stmt in
            match Sqlfun_parse.Parser.parse_stmt sql with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "unparseable case %S: %s" sql msg
          end)
        cases)
    Pattern_id.all

(* ----- detector ----- *)

let test_detector_finds_planted_bug () =
  let prof = Dialect.find_exn "clickhouse" in
  let detector = Soft.Detector.create prof in
  (match
     Soft.Detector.run_sql detector "SELECT TODECIMALSTRING(CAST('110' AS DECIMAL256(45)), *)"
   with
   | Soft.Detector.New_bug spec ->
     Alcotest.(check string) "site" "clickhouse/todecimalstring/star-precision"
       spec.Fault.site
   | _ -> Alcotest.fail "expected a crash");
  (* duplicate site reported as Dup_bug, engine restarted in between *)
  (match
     Soft.Detector.run_sql detector "SELECT TODECIMALSTRING(3.14, *)"
   with
   | Soft.Detector.Dup_bug _ -> ()
   | _ -> Alcotest.fail "expected dup");
  Alcotest.(check int) "one unique bug" 1 (List.length (Soft.Detector.bugs detector));
  (* the engine is alive after the restarts *)
  match Soft.Detector.run_sql detector "SELECT 1" with
  | Soft.Detector.Passed -> ()
  | _ -> Alcotest.fail "engine should be alive"

let test_detector_classifies () =
  let prof = Dialect.find_exn "postgresql" in
  let detector = Soft.Detector.create prof in
  (match Soft.Detector.run_sql detector "SELECT LENGTH('x')" with
   | Soft.Detector.Passed -> ()
   | _ -> Alcotest.fail "passed");
  (match Soft.Detector.run_sql detector "SELECT NO_SUCH_FUNC(1)" with
   | Soft.Detector.Clean_error _ -> ()
   | _ -> Alcotest.fail "clean error");
  (match Soft.Detector.run_sql detector "SELECT REPEAT('a', 9999999999)" with
   | Soft.Detector.False_positive _ -> ()
   | _ -> Alcotest.fail "resource FP");
  Alcotest.(check int) "fp count" 1 (Soft.Detector.false_positives detector);
  Alcotest.(check int) "3 executed" 3 (Soft.Detector.executed detector)

let test_budgeted_run () =
  let prof = Dialect.find_exn "monetdb" in
  let r = Soft.Soft_runner.fuzz ~budget:2_000 prof in
  Alcotest.(check bool) "respects budget roughly" true
    (r.Soft.Soft_runner.cases_executed <= 2_200);
  Alcotest.(check bool) "triggered many functions" true
    (r.Soft.Soft_runner.functions_triggered > 40)

let test_soft_beats_baselines_on_mariadb () =
  (* the core claim, in miniature: under the same budget SOFT finds
     injected bugs and the baselines find none *)
  let budget = 40_000 in
  let soft_run = Sqlfun_harness.Compare.run_tool Sqlfun_harness.Compare.Soft_tool ~dialect:"mariadb" ~budget in
  let squirrel = Sqlfun_harness.Compare.run_tool Sqlfun_harness.Compare.Squirrel ~dialect:"mariadb" ~budget in
  let sqlancer = Sqlfun_harness.Compare.run_tool Sqlfun_harness.Compare.Sqlancer ~dialect:"mariadb" ~budget in
  Alcotest.(check bool) "SOFT finds bugs" true (soft_run.Sqlfun_harness.Compare.bugs > 0);
  Alcotest.(check int) "SQUIRREL finds none" 0 squirrel.Sqlfun_harness.Compare.bugs;
  Alcotest.(check int) "SQLancer finds none" 0 sqlancer.Sqlfun_harness.Compare.bugs

(* ----- statement fingerprinting and verdict memoization ----- *)

let parse_exn sql =
  match Sqlfun_parse.Parser.parse_stmt sql with
  | Ok stmt -> stmt
  | Error msg -> Alcotest.failf "unparseable %S: %s" sql msg

let test_fingerprint_agrees_with_equality () =
  (* structurally equal statements (print -> parse survivors) hash
     equal; sampled across every pattern's output *)
  List.iter
    (fun pattern ->
      List.iteri
        (fun i (c : Soft.Patterns.case) ->
          if i mod 97 = 0 then begin
            let stmt = c.Soft.Patterns.stmt in
            match Sqlfun_parse.Parser.parse_stmt (Sql_pp.stmt stmt) with
            | Ok stmt' when Ast_util.equal_stmt stmt stmt' ->
              Alcotest.(check int64) "equal statements hash equal"
                (Ast_util.fingerprint stmt) (Ast_util.fingerprint stmt')
            | Ok _ | Error _ -> ()
          end)
        (gen "mysql" pattern))
    Pattern_id.all

let test_fingerprint_sensitivity () =
  (* every pair below differs in exactly one structural detail a cache
     must not conflate: literal value, literal type, argument order,
     arity, cast target, DISTINCT flag *)
  let pairs =
    [
      ("SELECT LENGTH('a')", "SELECT LENGTH('b')");
      ("SELECT LENGTH('1')", "SELECT LENGTH(1)");
      ("SELECT CONCAT('a', 'b')", "SELECT CONCAT('b', 'a')");
      ("SELECT CONCAT('a')", "SELECT CONCAT('a', 'a')");
      ("SELECT CAST(1 AS BIGINT)", "SELECT CAST(1 AS TEXT)");
      ("SELECT COUNT(c) FROM t", "SELECT COUNT(DISTINCT c) FROM t");
      ("SELECT REPEAT('a', 2)", "SELECT REPEAT('a', -2)");
    ]
  in
  List.iter
    (fun (a, b) ->
      let fa = Ast_util.fingerprint (parse_exn a) in
      let fb = Ast_util.fingerprint (parse_exn b) in
      if Int64.equal fa fb then
        Alcotest.failf "distinct statements %S and %S collided" a b)
    pairs;
  (* and a broad sweep: distinct sampled statements rarely collide *)
  let tbl = Hashtbl.create 512 in
  let stmts = ref 0 in
  List.iter
    (fun pattern ->
      List.iteri
        (fun i (c : Soft.Patterns.case) ->
          if i mod 31 = 0 then begin
            incr stmts;
            let fp = Ast_util.fingerprint c.Soft.Patterns.stmt in
            match Hashtbl.find_opt tbl fp with
            | Some prior
              when not (Ast_util.equal_stmt prior c.Soft.Patterns.stmt) ->
              Alcotest.failf "fingerprint collision on %S vs %S"
                (Sql_pp.stmt prior)
                (Sql_pp.stmt c.Soft.Patterns.stmt)
            | Some _ -> ()
            | None -> Hashtbl.add tbl fp c.Soft.Patterns.stmt
          end)
        (gen "duckdb" pattern))
    Pattern_id.all;
  Alcotest.(check bool) "sampled a real population" true (!stmts > 200)

let test_collision_guard () =
  (* a forced 64-bit collision must come back as a verified miss, never
     as a hit on the other statement's verdict *)
  let cache : string Soft.Verdict_cache.t = Soft.Verdict_cache.create () in
  let a = parse_exn "SELECT LENGTH('a')" in
  let b = parse_exn "SELECT UPPER('z')" in
  let fp = 42L in
  Soft.Verdict_cache.add cache ~fp [ a ] "verdict-of-a";
  (match Soft.Verdict_cache.find cache ~fp [ b ] with
   | Soft.Verdict_cache.Miss { collided = true; _ } -> ()
   | Soft.Verdict_cache.Miss { collided = false; _ } ->
     Alcotest.fail "collision not flagged"
   | Soft.Verdict_cache.Hit _ ->
     Alcotest.fail "collision replayed the wrong statement's verdict");
  (match Soft.Verdict_cache.find cache ~fp [ a ] with
   | Soft.Verdict_cache.Hit v -> Alcotest.(check string) "hit" "verdict-of-a" v
   | Soft.Verdict_cache.Miss _ -> Alcotest.fail "expected a hit");
  Soft.Verdict_cache.add cache ~fp [ b ] "verdict-of-b";
  (match Soft.Verdict_cache.find cache ~fp [ b ] with
  | Soft.Verdict_cache.Hit v -> Alcotest.(check string) "hit b" "verdict-of-b" v
  | Soft.Verdict_cache.Miss _ -> Alcotest.fail "expected a hit after add");
  (* the list guard is not prefix-blind: a two-statement list under the
     same fingerprint is a collision against the cached singleton *)
  match Soft.Verdict_cache.find cache ~fp [ b; a ] with
  | Soft.Verdict_cache.Miss { collided = true; _ } -> ()
  | Soft.Verdict_cache.Miss { collided = false; _ } ->
    Alcotest.fail "list-length collision not flagged"
  | Soft.Verdict_cache.Hit _ ->
    Alcotest.fail "prefix list replayed the wrong entry"

let test_fingerprint_ddl_dml () =
  (* satellite: fingerprint/equal_stmt over Create_table and Insert
     nodes — the statement shapes scenarios put in front of a probe.
     Every pair differs in one structural detail a scenario memo must
     not conflate: table name, column type, declared precision,
     NOT NULL flag, inserted literal, column list, row arity. *)
  let pairs =
    [
      ("CREATE TABLE t (v TEXT)", "CREATE TABLE u (v TEXT)");
      ("CREATE TABLE t (v TEXT)", "CREATE TABLE t (v BIGINT)");
      ( "CREATE TABLE t (v DECIMAL(38, 10))",
        "CREATE TABLE t (v DECIMAL(40, 20))" );
      ("CREATE TABLE t (v TEXT)", "CREATE TABLE t (v TEXT NOT NULL)");
      ("INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (2)");
      ("INSERT INTO t VALUES (1)", "INSERT INTO t (v) VALUES (1)");
      ("INSERT INTO t VALUES (1)", "INSERT INTO t VALUES (1), (1)");
      ("INSERT INTO t VALUES ('x')", "INSERT INTO u VALUES ('x')");
    ]
  in
  List.iter
    (fun (a, b) ->
      let sa = parse_exn a and sb = parse_exn b in
      Alcotest.(check bool)
        (Printf.sprintf "%S <> %S structurally" a b)
        false
        (Ast_util.equal_stmt sa sb);
      if Int64.equal (Ast_util.fingerprint sa) (Ast_util.fingerprint sb) then
        Alcotest.failf "distinct statements %S and %S collided" a b;
      (* round-trip: print -> parse preserves equality and fingerprint *)
      match Sqlfun_parse.Parser.parse_stmt (Sql_pp.stmt sa) with
      | Ok sa' when Ast_util.equal_stmt sa sa' ->
        Alcotest.(check int64) "round-trip hashes equal"
          (Ast_util.fingerprint sa) (Ast_util.fingerprint sa')
      | Ok _ | Error _ -> ())
    pairs

let test_fingerprint_stmts_lists () =
  (* satellite: the scenario memo key is sensitive to everything the
     detector's reset discipline does not neutralize — list length,
     statement order, and any edit to a prerequisite *)
  let create = parse_exn "CREATE TABLE t (v TEXT)" in
  let insert = parse_exn "INSERT INTO t VALUES ('abc')" in
  let insert' = parse_exn "INSERT INTO t VALUES ('abd')" in
  let probe = parse_exn "SELECT LENGTH(v) FROM t" in
  let fp = Ast_util.fingerprint_stmts in
  let distinct msg a b =
    Alcotest.(check bool) (msg ^ ": lists structurally distinct") false
      (Ast_util.equal_stmts a b);
    if Int64.equal (fp a) (fp b) then Alcotest.failf "%s: collided" msg
  in
  distinct "singleton vs doubled" [ probe ] [ probe; probe ];
  distinct "prefix vs full scenario" [ create; insert ]
    [ create; insert; probe ];
  distinct "prereq order" [ create; insert; probe ] [ insert; create; probe ];
  distinct "prereq literal edit" [ create; insert; probe ]
    [ create; insert'; probe ];
  (* a singleton list must not hash like the bare statement — the
     stateless memo keyspace and the scenario keyspace stay disjoint *)
  Alcotest.(check bool) "singleton list keyspace is distinct" false
    (Int64.equal (fp [ probe ]) (Ast_util.fingerprint probe));
  (* and equal lists hash equal, of course *)
  let copy = parse_exn "SELECT LENGTH(v) FROM t" in
  Alcotest.(check bool) "copies equal" true
    (Ast_util.equal_stmts [ create; copy ] [ create; probe ]);
  Alcotest.(check int64) "copies hash equal"
    (fp [ create; probe ])
    (fp [ create; copy ])

let test_scenario_positions_counted () =
  (* satellite: count_positions counts INSERT/UPDATE/WHERE substitution
     slots, via the scenario probes that put calls there *)
  let prof = Dialect.find_exn "mysql" in
  let registry = Dialect.registry prof in
  let seeds =
    Soft.Collector.collect ~registry ~suite:prof.Dialect.seeds ()
  in
  let scenarios = Soft.Patterns.generate_scenarios ~registry ~seeds () in
  let n = Soft.Patterns.count_scenario_positions scenarios in
  Alcotest.(check bool) "scenario probes expose substitution slots" true
    (n > 0);
  (* INSERT-position and WHERE-position probes specifically carry their
     calls inside Insert rows / WHERE clauses — both must be seen *)
  let kinds = Hashtbl.create 4 in
  Seq.iter
    (fun (sc : Soft.Patterns.scenario) ->
      let c = sc.Soft.Patterns.case in
      let slots =
        List.length (Ast_util.function_calls c.Soft.Patterns.stmt)
      in
      if slots > 0 then
        Hashtbl.replace kinds c.Soft.Patterns.origin ())
    (Soft.Patterns.generate_scenarios ~registry ~seeds ());
  Alcotest.(check bool) "INSERT-position probes counted" true
    (Hashtbl.mem kinds "scenario:insert-position");
  Alcotest.(check bool) "WHERE-position probes counted" true
    (Hashtbl.mem kinds "scenario:where-position")

let test_scenario_crash_restores_baseline () =
  (* satellite: after a mid-scenario crash the restarted engine's
     storage equals the post-seed baseline (no half-created scenario
     tables), and the recorded PoC replays standalone on a cold armed
     engine *)
  let prof = Dialect.find_exn "mysql" in
  let det = Soft.Detector.create prof in
  let registry = Dialect.registry prof in
  let seeds =
    Soft.Collector.collect ~registry ~suite:prof.Dialect.seeds ()
  in
  let crashed = ref None in
  let run_stream scenarios =
    Seq.iter
      (fun sc ->
        match Soft.Detector.run_scenario det sc with
        | (Soft.Detector.New_bug _ | Soft.Detector.Dup_bug _)
          when !crashed = None
               && sc.Soft.Patterns.prereqs <> [] ->
          crashed := Some sc
        | _ -> ())
      scenarios
  in
  run_stream (Soft.Patterns.generate_scenarios ~registry ~seeds ());
  (match !crashed with
   | None -> Alcotest.fail "no stateful scenario crashed (vacuous test)"
   | Some _ -> ());
  (* the detector's engine is back to the post-seed baseline: none of
     the scenario tables survived the crash restart or the restores *)
  List.iter
    (fun tbl ->
      match
        Soft.Detector.run_sql det (Printf.sprintf "SELECT v FROM %s" tbl)
      with
      | Soft.Detector.Clean_error _ -> ()
      | _ -> Alcotest.failf "scenario table %s leaked past the baseline" tbl)
    [ "soft_sa"; "soft_sb"; "soft_sc"; "soft_sd"; "soft_se" ];
  (* and every recorded stateful PoC replays standalone: a cold armed
     engine executes the PoC script and crashes again *)
  let stateful_pocs =
    List.filter_map
      (fun (b : Soft.Detector.found_bug) ->
        if String.contains b.Soft.Detector.poc '\n' then
          Some b.Soft.Detector.poc
        else None)
      (Soft.Detector.bugs det)
  in
  Alcotest.(check bool) "found stateful PoCs" true (stateful_pocs <> []);
  List.iter
    (fun poc ->
      let e = Dialect.make_engine ~armed:true prof in
      match Sqlfun_engine.Engine.exec_script e poc with
      | exception Sqlfun_fault.Fault.Crash _ -> ()
      | exception Stack_overflow -> ()
      | Ok _ | Error _ ->
        Alcotest.failf "stateful PoC did not replay standalone:\n%s" poc)
    stateful_pocs

let test_stateful_campaign_identical () =
  (* the scenario determinism bar: a stateful campaign's verdict JSON
     (scenario counters and stage attribution included — they live in
     [totals]) is identical with memoization on vs off *)
  let open Sqlfun_telemetry in
  let prof = Dialect.find_exn "duckdb" in
  let on = Soft.Soft_runner.fuzz ~budget:2_000 ~memo:true prof in
  let off = Soft.Soft_runner.fuzz ~budget:2_000 ~memo:false prof in
  let jon = Soft.Report.campaign_to_json on
  and joff = Soft.Report.campaign_to_json off in
  List.iter
    (fun key ->
      let get j =
        match Json.member key j with
        | Some v -> Json.to_string v
        | None -> Alcotest.failf "report lacks %S" key
      in
      Alcotest.(check string)
        (Printf.sprintf "%s identical" key)
        (get joff) (get jon))
    [ "totals"; "verdicts"; "bugs"; "fp_signatures"; "families" ];
  Alcotest.(check bool) "scenarios executed" true
    (on.Soft.Soft_runner.scenarios_executed > 0);
  let sv = on.Soft.Soft_runner.stage_verdicts in
  Alcotest.(check bool) "all three stages surfaced" true
    (sv.Soft.Detector.parse > 0 && sv.Soft.Detector.execute > 0
     && sv.Soft.Detector.storage > 0);
  (* stateful-off runs no scenarios and reaches no staged fault site *)
  let legacy = Soft.Soft_runner.fuzz ~budget:2_000 ~stateful:false prof in
  Alcotest.(check int) "no scenarios when off" 0
    legacy.Soft.Soft_runner.scenarios_executed;
  Alcotest.(check int) "no prereqs when off" 0
    legacy.Soft.Soft_runner.prereq_statements;
  let lsv = legacy.Soft.Soft_runner.stage_verdicts in
  Alcotest.(check int) "no parse-stage verdicts when off" 0
    lsv.Soft.Detector.parse;
  Alcotest.(check int) "no storage-stage verdicts when off" 0
    lsv.Soft.Detector.storage

let test_memo_campaign_identical () =
  (* the acceptance bar: a memoized campaign is field-for-field
     identical to an unmemoized one — only throughput metadata
     (cases_memoized, timings, coverage hit counts) may differ *)
  let prof = Dialect.find_exn "clickhouse" in
  let on = Soft.Soft_runner.fuzz ~budget:3_000 ~memo:true prof in
  let off = Soft.Soft_runner.fuzz ~budget:3_000 ~memo:false prof in
  let bug_key (b : Soft.Detector.found_bug) =
    (b.Soft.Detector.spec.Fault.site, b.Soft.Detector.found_by,
     b.Soft.Detector.poc, b.Soft.Detector.case_number)
  in
  Alcotest.(check int) "cases" on.Soft.Soft_runner.cases_executed
    off.Soft.Soft_runner.cases_executed;
  Alcotest.(check int) "passed" on.Soft.Soft_runner.passed
    off.Soft.Soft_runner.passed;
  Alcotest.(check int) "clean errors" on.Soft.Soft_runner.clean_errors
    off.Soft.Soft_runner.clean_errors;
  Alcotest.(check int) "false positives" on.Soft.Soft_runner.false_positives
    off.Soft.Soft_runner.false_positives;
  Alcotest.(check (list string)) "fp signatures"
    on.Soft.Soft_runner.fp_signatures off.Soft.Soft_runner.fp_signatures;
  Alcotest.(check int) "known crashes" on.Soft.Soft_runner.known_crashes
    off.Soft.Soft_runner.known_crashes;
  Alcotest.(check bool) "same bugs" true
    (List.map bug_key on.Soft.Soft_runner.bugs
    = List.map bug_key off.Soft.Soft_runner.bugs);
  Alcotest.(check int) "functions triggered"
    on.Soft.Soft_runner.functions_triggered
    off.Soft.Soft_runner.functions_triggered;
  Alcotest.(check int) "branches covered" on.Soft.Soft_runner.branches_covered
    off.Soft.Soft_runner.branches_covered;
  (* with compilation on, the memo/compile partition hands the
     skeleton-sharing families to the plan cache and memoizes only the
     compiler-fallback streams — non-vacuity of the memo machinery is
     checked on the pure-memo configuration, where it still covers
     every cacheable statement *)
  let pure =
    Soft.Soft_runner.fuzz ~budget:3_000 ~memo:true ~compile:false prof
  in
  Alcotest.(check bool) "memoized some cases" true
    (pure.Soft.Soft_runner.cases_memoized > 0);
  Alcotest.(check int) "no-memo memoizes nothing" 0
    off.Soft.Soft_runner.cases_memoized

let test_compile_campaign_identical () =
  (* the compile-soundness bar, over every dialect: closure-compiled
     execution must be behaviour-invisible — identical verdict JSON,
     coverage point sets, and fault sites with compilation on vs off.
     Only throughput metadata may differ: timings, plan-cache counters,
     and coverage hit counts — the memo/compile partition memoizes
     skeleton-sharing families only when the plan cache is off, and a
     memo replay skips the duplicate hit-count increments a re-execution
     would record. *)
  let open Sqlfun_telemetry in
  let deterministic_keys =
    [ "totals"; "verdicts"; "bugs"; "fp_signatures"; "families" ]
  in
  List.iter
    (fun prof ->
      let name = prof.Dialect.id in
      let on = Soft.Soft_runner.fuzz ~budget:2_000 ~compile:true prof in
      let off = Soft.Soft_runner.fuzz ~budget:2_000 ~compile:false prof in
      let jon = Soft.Report.campaign_to_json on
      and joff = Soft.Report.campaign_to_json off in
      List.iter
        (fun key ->
          let get j =
            match Json.member key j with
            | Some v -> Json.to_string v
            | None -> Alcotest.failf "%s: report lacks %S" name key
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: %s identical" name key)
            (get joff) (get jon))
        deterministic_keys;
      let point_set (r : Soft.Soft_runner.result) =
        List.map fst (Sqlfun_coverage.Coverage.points r.Soft.Soft_runner.coverage)
      in
      Alcotest.(check (list string))
        (name ^ ": coverage point set identical")
        (point_set off) (point_set on);
      let sites (r : Soft.Soft_runner.result) =
        List.map
          (fun (b : Soft.Detector.found_bug) ->
            (b.Soft.Detector.spec.Fault.site, b.Soft.Detector.case_number))
          r.Soft.Soft_runner.bugs
      in
      Alcotest.(check (list (pair string int)))
        (name ^ ": fault sites identical")
        (sites off) (sites on);
      (* the property is vacuous unless compiled plans actually ran *)
      let counts = Telemetry.compile_counts on.Soft.Soft_runner.telemetry in
      Alcotest.(check bool)
        (name ^ ": compiled plans were reused")
        true
        (counts.Telemetry.c_hits > 0);
      let counts_off =
        Telemetry.compile_counts off.Soft.Soft_runner.telemetry
      in
      Alcotest.(check int)
        (name ^ ": compile-off never probes the plan cache")
        0
        (counts_off.Telemetry.c_hits + counts_off.Telemetry.c_misses))
    Dialect.all

let test_compact_campaign_identical () =
  (* the compact-representation soundness bar, over every dialect:
     range-array and rope-string values must be behaviour-invisible.
     Unlike memo/compile, compaction cannot even shift coverage hit
     counts — every branch probe and tick survives on the compact
     paths — so the full coverage JSON (hit counts included) is held
     identical, not just the point set. *)
  let open Sqlfun_telemetry in
  let deterministic_keys =
    [ "totals"; "verdicts"; "bugs"; "fp_signatures"; "families"; "coverage" ]
  in
  let total_hits = ref 0 in
  List.iter
    (fun prof ->
      let name = prof.Dialect.id in
      let on = Soft.Soft_runner.fuzz ~budget:2_000 ~compact:true prof in
      let off = Soft.Soft_runner.fuzz ~budget:2_000 ~compact:false prof in
      let jon = Soft.Report.campaign_to_json on
      and joff = Soft.Report.campaign_to_json off in
      List.iter
        (fun key ->
          let get j =
            match Json.member key j with
            | Some v -> Json.to_string v
            | None -> Alcotest.failf "%s: report lacks %S" name key
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: %s identical" name key)
            (get joff) (get jon))
        deterministic_keys;
      Alcotest.(check (list (pair string int)))
        (name ^ ": coverage points identical")
        (Sqlfun_coverage.Coverage.points off.Soft.Soft_runner.coverage)
        (Sqlfun_coverage.Coverage.points on.Soft.Soft_runner.coverage);
      let sites (r : Soft.Soft_runner.result) =
        List.map
          (fun (b : Soft.Detector.found_bug) ->
            (b.Soft.Detector.spec.Fault.site, b.Soft.Detector.case_number))
          r.Soft.Soft_runner.bugs
      in
      Alcotest.(check (list (pair string int)))
        (name ^ ": fault sites identical")
        (sites off) (sites on);
      let kon = Telemetry.compact_counts on.Soft.Soft_runner.telemetry in
      total_hits := !total_hits + kon.Telemetry.k_hits;
      let koff = Telemetry.compact_counts off.Soft.Soft_runner.telemetry in
      Alcotest.(check int)
        (name ^ ": compact-off builds no compact values")
        0 koff.Telemetry.k_hits)
    Dialect.all;
  (* the property is vacuous unless compact values actually flowed *)
  Alcotest.(check bool) "compact values were built" true (!total_hits > 0)

let test_batch_stream_equivalence () =
  (* the slot-stream soundness bar at the generation layer: flattening
     the batched work stream (reconstructing each member's AST from the
     family skeleton plus its slot vector) must reproduce the unbatched
     generator's stream element for element — same pattern, same origin,
     structurally equal statement — for every pattern on every
     dialect. *)
  List.iter
    (fun prof ->
      let name = prof.Dialect.id in
      let registry = Dialect.registry prof in
      let seeds =
        Soft.Collector.collect ~registry ~suite:prof.Dialect.seeds ()
      in
      let batched_total = ref 0 in
      List.iter
        (fun pattern ->
          let flat =
            Soft.Patterns.generate_work ~registry ~seeds pattern
            |> Seq.concat_map (fun w ->
                   (match w with
                    | Soft.Patterns.Batched b ->
                      batched_total := !batched_total + Soft.Patterns.batch_size b
                    | Soft.Patterns.Single _ -> ());
                   Soft.Patterns.work_cases w)
          in
          let plain = Soft.Patterns.generate ~registry ~seeds pattern in
          let rec go i flat plain =
            match (Seq.uncons flat, Seq.uncons plain) with
            | None, None -> ()
            | Some _, None | None, Some _ ->
              Alcotest.failf "%s %s: streams diverge in length at case %d"
                name (Pattern_id.to_string pattern) i
            | Some (f, flat), Some (p, plain) ->
              let ctx = Printf.sprintf "%s %s case %d" name
                  (Pattern_id.to_string pattern) i in
              if f.Soft.Patterns.pattern <> p.Soft.Patterns.pattern then
                Alcotest.failf "%s: pattern differs" ctx;
              Alcotest.(check string) (ctx ^ ": origin")
                p.Soft.Patterns.origin f.Soft.Patterns.origin;
              if
                not
                  (Ast_util.equal_stmt f.Soft.Patterns.stmt
                     p.Soft.Patterns.stmt)
              then
                Alcotest.failf "%s: reconstructed AST differs:\n  %s\n  %s" ctx
                  (Sql_pp.stmt f.Soft.Patterns.stmt)
                  (Sql_pp.stmt p.Soft.Patterns.stmt);
              go (i + 1) flat plain
          in
          go 1 flat plain)
        Pattern_id.all;
      (* the property is vacuous unless batches actually formed *)
      Alcotest.(check bool) (name ^ ": batches formed") true
        (!batched_total > 0))
    Dialect.all

let test_batch_campaign_identical () =
  (* the batch soundness bar at the campaign layer, over every dialect:
     slot-stream batched execution must be behaviour-invisible —
     identical verdict JSON, bug lists, FP signatures, and the full
     hit-counted coverage JSON (batching hoists decisions that are
     constant across a family; it never skips or reorders an engine
     round-trip, so unlike memo it cannot even shift hit counts). The
     budget forces {!Soft.Soft_runner.split_budget} shares through
     mid-family cuts, so batch splitting is exercised too. *)
  let open Sqlfun_telemetry in
  let deterministic_keys =
    [ "totals"; "verdicts"; "bugs"; "fp_signatures"; "families"; "coverage" ]
  in
  List.iter
    (fun prof ->
      let name = prof.Dialect.id in
      let on = Soft.Soft_runner.fuzz ~budget:2_000 ~batch:true prof in
      let off = Soft.Soft_runner.fuzz ~budget:2_000 ~batch:false prof in
      let jon = Soft.Report.campaign_to_json on
      and joff = Soft.Report.campaign_to_json off in
      List.iter
        (fun key ->
          let get j =
            match Json.member key j with
            | Some v -> Json.to_string v
            | None -> Alcotest.failf "%s: report lacks %S" name key
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: %s identical" name key)
            (get joff) (get jon))
        deterministic_keys;
      let sites (r : Soft.Soft_runner.result) =
        List.map
          (fun (b : Soft.Detector.found_bug) ->
            (b.Soft.Detector.spec.Fault.site, b.Soft.Detector.case_number))
          r.Soft.Soft_runner.bugs
      in
      Alcotest.(check (list (pair string int)))
        (name ^ ": fault sites identical")
        (sites off) (sites on);
      (* the property is vacuous unless batches actually executed *)
      let bon = Telemetry.batch_counts on.Soft.Soft_runner.telemetry in
      Alcotest.(check bool)
        (name ^ ": batches executed")
        true (bon.Telemetry.b_cases > 0);
      let boff = Telemetry.batch_counts off.Soft.Soft_runner.telemetry in
      Alcotest.(check int)
        (name ^ ": batch-off executes no batches")
        0
        (boff.Telemetry.b_flushes + boff.Telemetry.b_cases))
    Dialect.all

(* ----- baselines ----- *)

let test_baselines_generate_valid_statements () =
  List.iter
    (fun (make : dialect:string -> seed:int -> Sqlfun_baselines.Baseline.t) ->
      let gen = make ~dialect:"mysql" ~seed:1 in
      let prof = Dialect.find_exn "mysql" in
      let engine = Dialect.make_engine prof in
      let ok = ref 0 in
      for _ = 1 to 300 do
        let stmt = gen.Sqlfun_baselines.Baseline.next () in
        match Sqlfun_engine.Engine.exec_stmt engine stmt with
        | Ok _ -> incr ok
        | Error _ -> ()
      done;
      Alcotest.(check bool)
        (gen.Sqlfun_baselines.Baseline.name ^ " mostly executes")
        true (!ok > 150))
    [
      Sqlfun_baselines.Sqlsmith_gen.make;
      Sqlfun_baselines.Sqlancer_gen.make;
      Sqlfun_baselines.Squirrel_gen.make;
    ]

let test_baselines_deterministic () =
  let a = Sqlfun_baselines.Sqlsmith_gen.make ~dialect:"mysql" ~seed:5 in
  let b = Sqlfun_baselines.Sqlsmith_gen.make ~dialect:"mysql" ~seed:5 in
  for _ = 1 to 50 do
    Alcotest.(check string) "same stream"
      (Sql_pp.stmt (a.Sqlfun_baselines.Baseline.next ()))
      (Sql_pp.stmt (b.Sqlfun_baselines.Baseline.next ()))
  done

let test_sqlancer_only_modeled_functions () =
  let gen = Sqlfun_baselines.Sqlancer_gen.make ~dialect:"postgresql" ~seed:3 in
  for _ = 1 to 200 do
    let stmt = gen.Sqlfun_baselines.Baseline.next () in
    List.iter
      (fun (c : Ast.call) ->
        Alcotest.(check bool)
          (c.Ast.fname ^ " is modeled")
          true
          (List.mem c.Ast.fname Sqlfun_baselines.Sqlancer_gen.modeled))
      (Ast_util.function_calls stmt)
  done

let suite =
  ( "soft",
    [
      Alcotest.test_case "boundary pool composition" `Quick test_pool_composition;
      Alcotest.test_case "collector" `Quick test_collector;
      Alcotest.test_case "donors distinct" `Quick test_donors_distinct;
      Alcotest.test_case "P1.2 substitutes pool" `Quick test_p1_2_substitutes_pool;
      Alcotest.test_case "P1.3 splices digits" `Quick test_p1_3_splices_digits;
      Alcotest.test_case "P2.1 casts" `Quick test_p2_1_casts;
      Alcotest.test_case "P2.2 unions" `Quick test_p2_2_unions;
      Alcotest.test_case "P2.3 literal donors" `Quick test_p2_3_literal_donors;
      Alcotest.test_case "P3.1 repeats" `Quick test_p3_1_repeats;
      Alcotest.test_case "P3 nesting cap (Finding 3)" `Quick test_p3_nesting_cap;
      Alcotest.test_case "generated statements parse" `Slow
        test_all_generated_statements_parse;
      Alcotest.test_case "detector finds planted bug" `Quick
        test_detector_finds_planted_bug;
      Alcotest.test_case "detector classifies" `Quick test_detector_classifies;
      Alcotest.test_case "budgeted run" `Quick test_budgeted_run;
      Alcotest.test_case "fingerprint agrees with equality" `Quick
        test_fingerprint_agrees_with_equality;
      Alcotest.test_case "fingerprint sensitivity" `Quick
        test_fingerprint_sensitivity;
      Alcotest.test_case "collision guard" `Quick test_collision_guard;
      Alcotest.test_case "fingerprint over DDL/DML" `Quick
        test_fingerprint_ddl_dml;
      Alcotest.test_case "fingerprint over statement lists" `Quick
        test_fingerprint_stmts_lists;
      Alcotest.test_case "scenario positions counted" `Quick
        test_scenario_positions_counted;
      Alcotest.test_case "scenario crash restores baseline" `Quick
        test_scenario_crash_restores_baseline;
      Alcotest.test_case "stateful campaign identical (memo on/off)" `Slow
        test_stateful_campaign_identical;
      Alcotest.test_case "memoized campaign identical" `Slow
        test_memo_campaign_identical;
      Alcotest.test_case "compiled campaign identical (all dialects)" `Slow
        test_compile_campaign_identical;
      Alcotest.test_case "compact campaign identical (all dialects)" `Slow
        test_compact_campaign_identical;
      Alcotest.test_case "batch stream equivalence (all dialects)" `Slow
        test_batch_stream_equivalence;
      Alcotest.test_case "batched campaign identical (all dialects)" `Slow
        test_batch_campaign_identical;
      Alcotest.test_case "SOFT beats baselines (mariadb)" `Slow
        test_soft_beats_baselines_on_mariadb;
      Alcotest.test_case "baselines generate valid statements" `Quick
        test_baselines_generate_valid_statements;
      Alcotest.test_case "baselines deterministic" `Quick test_baselines_deterministic;
      Alcotest.test_case "sqlancer modeled set" `Quick
        test_sqlancer_only_modeled_functions;
    ] )
