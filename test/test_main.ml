let () =
  Alcotest.run "sqlfun"
    [ Test_decimal.suite; Test_lexer.suite; Test_parser.suite; Test_json.suite;
      Test_calendar.suite; Test_inet_geo_xml.suite; Test_engine.suite; Test_dialects.suite; Test_study.suite; Test_soft.suite; Test_functions.suite; Test_harness.suite; Test_cast.suite; Test_joins.suite; Test_coverage.suite; Test_explain.suite; Test_value.suite;
      Test_telemetry.suite; Test_parallel.suite ]
