(** Tests for the telemetry subsystem: span nesting/aggregation,
    histogram percentile math, JSONL event round-trips, and the
    determinism guarantee (verdict counts identical with the sink on or
    off). *)

open Sqlfun_telemetry
module Dialect = Sqlfun_dialects.Dialect

(* ----- JSON primitive ----- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "quote \" slash \\ newline \n tab \t done");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("a", Json.Arr [ Json.Int 1; Json.Str "x"; Json.Arr [] ]);
        ("o", Json.Obj [ ("nested", Json.Int 7) ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{} trailing" ]

(* ----- spans: nesting, aggregation, event stream ----- *)

let test_span_nesting_and_aggregation () =
  let sink, events = Telemetry.memory_sink () in
  let t = Telemetry.create ~sink () in
  let answer =
    Telemetry.with_span t "outer" (fun () ->
        Telemetry.with_span t ~dialect:"mysql" ~pattern:"P1.1" "inner"
          (fun () -> ());
        Telemetry.with_span t ~dialect:"mysql" ~pattern:"P1.2" "inner"
          (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_span is transparent" 17 answer;
  let timings = Telemetry.stage_timings t in
  let find stage =
    match
      List.find_opt (fun s -> s.Telemetry.stage = stage) timings
    with
    | Some s -> s
    | None -> Alcotest.failf "stage %s missing" stage
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "outer called once" 1 outer.Telemetry.calls;
  Alcotest.(check int) "inner aggregated" 2 inner.Telemetry.calls;
  Alcotest.(check bool) "outer time covers inner time" true
    (outer.Telemetry.total_ns >= inner.Telemetry.total_ns);
  Alcotest.(check bool) "max <= total" true
    (inner.Telemetry.max_ns <= inner.Telemetry.total_ns);
  (* event stream: open/close pairs, properly nested depths *)
  match events () with
  | [
   Telemetry.Span_open o1;
   Telemetry.Span_open o2;
   Telemetry.Span_close c2;
   Telemetry.Span_open o3;
   Telemetry.Span_close c3;
   Telemetry.Span_close c1;
  ] ->
    Alcotest.(check string) "outer first" "outer" o1.stage;
    Alcotest.(check int) "outer depth 0" 0 o1.depth;
    Alcotest.(check int) "inner depth 1" 1 o2.depth;
    Alcotest.(check int) "depth restored" 1 o3.depth;
    Alcotest.(check string) "pattern attr" "P1.1" o2.pattern;
    Alcotest.(check string) "second pattern attr" "P1.2" o3.pattern;
    Alcotest.(check bool) "closes carry durations" true
      (c1.dur_ns >= 0 && c2.dur_ns >= 0 && c3.dur_ns >= 0);
    Alcotest.(check bool) "close timestamps ordered" true
      (c2.ts_ns <= c3.ts_ns && c3.ts_ns <= c1.ts_ns)
  | evs -> Alcotest.failf "unexpected event shape (%d events)" (List.length evs)

let test_span_closes_on_exception () =
  let t = Telemetry.create () in
  (try
     Telemetry.with_span t "boom" (fun () -> failwith "crash") |> ignore
   with Failure _ -> ());
  match Telemetry.stage_timings t with
  | [ s ] ->
    Alcotest.(check string) "stage recorded" "boom" s.Telemetry.stage;
    Alcotest.(check int) "one call" 1 s.Telemetry.calls
  | l -> Alcotest.failf "expected one stage, got %d" (List.length l)

let test_time_seq () =
  let t = Telemetry.create () in
  let seq = Telemetry.time_seq t ~stage:"generate" (List.to_seq [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "sequence preserved" [ 1; 2; 3 ]
    (List.of_seq seq);
  match Telemetry.stage_timings t with
  | [ s ] ->
    (* one span per forced node: three Cons plus the final Nil *)
    Alcotest.(check int) "one span per forcing" 4 s.Telemetry.calls
  | l -> Alcotest.failf "expected one stage, got %d" (List.length l)

(* ----- histogram percentile math ----- *)

let test_histogram_percentiles () =
  let h = Telemetry.Histogram.create () in
  Alcotest.(check int) "empty -> 0" 0 (Telemetry.Histogram.percentile h 0.5);
  (* 90 fast samples (10 ns: bucket [8,16)) and 10 slow ones
     (1000 ns: bucket [512,1024)) *)
  for _ = 1 to 90 do
    Telemetry.Histogram.add h 10
  done;
  for _ = 1 to 10 do
    Telemetry.Histogram.add h 1000
  done;
  Alcotest.(check int) "total" 100 (Telemetry.Histogram.total h);
  Alcotest.(check int) "p50 is the fast bucket's upper bound" 16
    (Telemetry.Histogram.percentile h 0.50);
  Alcotest.(check int) "p90 still fast" 16
    (Telemetry.Histogram.percentile h 0.90);
  Alcotest.(check int) "p99 lands in the slow bucket" 1024
    (Telemetry.Histogram.percentile h 0.99);
  Alcotest.(check int) "p100 = p99 bucket here" 1024
    (Telemetry.Histogram.percentile h 1.0)

let test_histogram_single_value () =
  let h = Telemetry.Histogram.create () in
  Telemetry.Histogram.add h 100;
  (* 100 ns sits in bucket [64,128): every quantile reports 128 *)
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f" q)
        128
        (Telemetry.Histogram.percentile h q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_histogram_bucket_edges () =
  let open Telemetry.Histogram in
  (* 1 ns lands in the first bucket, upper bound 2 *)
  Alcotest.(check int) "bucket_of 1" 0 (bucket_of 1);
  Alcotest.(check int) "upper of bucket(1)" 2 (bucket_upper (bucket_of 1));
  (* an exact power of two opens a fresh bucket: 2 -> [2,4) *)
  Alcotest.(check int) "bucket_of 2" 1 (bucket_of 2);
  Alcotest.(check int) "upper of bucket(2)" 4 (bucket_upper (bucket_of 2));
  Alcotest.(check int) "upper of bucket(2^40)" (1 lsl 41)
    (bucket_upper (bucket_of (1 lsl 40)));
  (* max_int clamps into the last bucket instead of running off the end *)
  Alcotest.(check int) "max_int clamps to last bucket" 47 (bucket_of max_int);
  Alcotest.(check int) "last bucket upper" (1 lsl 48)
    (bucket_upper (bucket_of max_int));
  (* percentile agrees with the bucket math at both edges *)
  let h = create () in
  add h 1;
  Alcotest.(check int) "p100 of {1}" 2 (percentile h 1.0);
  let h2 = create () in
  add h2 max_int;
  Alcotest.(check int) "p50 of {max_int}" (1 lsl 48) (percentile h2 0.5)

let test_long_span_percentile_clamp () =
  (* Regression: a single long stage span (a multi-second campaign) used
     to report its percentile as the log2-bucket upper bound — e.g. a
     13.35 s span answered p50 = 2^34 ns, and a ~3 s one answered the
     infamous 4294967296 (2^32). stage_timings now clamps every
     percentile to the observed max. *)
  let t = Telemetry.create () in
  let thirteen_s = 13_350_000_000 in
  Telemetry.record_stage t ~stage:"campaign" thirteen_s;
  (match Telemetry.stage_timings t with
   | [ s ] ->
     Alcotest.(check int) "max is the sample" thirteen_s s.Telemetry.max_ns;
     Alcotest.(check int) "p50 clamped to max" thirteen_s s.Telemetry.p50_ns;
     Alcotest.(check int) "p90 clamped to max" thirteen_s s.Telemetry.p90_ns;
     Alcotest.(check int) "p99 clamped to max" thirteen_s s.Telemetry.p99_ns
   | l -> Alcotest.failf "expected one stage, got %d" (List.length l));
  (* mixed spans: the clamp caps at the max without disturbing
     percentiles that already sit below it *)
  let t2 = Telemetry.create () in
  Telemetry.record_stage t2 ~stage:"campaign" 3_000_000_000;
  Telemetry.record_stage t2 ~stage:"campaign" 5_000_000_000;
  (match Telemetry.stage_timings t2 with
   | [ s ] ->
     (* 3 s sits in bucket [2^31, 2^32): its upper bound is below the
        5 s max, so p50 keeps the histogram estimate *)
     Alcotest.(check int) "p50 keeps bucket estimate" 4_294_967_296
       s.Telemetry.p50_ns;
     Alcotest.(check int) "p99 clamped to max" 5_000_000_000
       s.Telemetry.p99_ns
   | l -> Alcotest.failf "expected one stage, got %d" (List.length l))

let test_verdict_class_roundtrip () =
  List.iter
    (fun c ->
      let s = Telemetry.verdict_class_to_string c in
      match Telemetry.verdict_class_of_string s with
      | Some c' ->
        Alcotest.(check bool) (Printf.sprintf "%s round-trips" s) true (c = c')
      | None -> Alcotest.failf "%s does not parse back" s)
    Telemetry.verdict_classes;
  Alcotest.(check bool) "bogus class rejected" true
    (Telemetry.verdict_class_of_string "bogus" = None)

(* ----- JSONL event round-trip ----- *)

let sample_events =
  [
    Telemetry.Span_open
      { stage = "execute"; dialect = "mysql"; pattern = "P1.2"; depth = 2;
        ts_ns = 123 };
    Telemetry.Span_close
      { stage = "execute"; dialect = "mysql"; pattern = "P1.2"; depth = 2;
        ts_ns = 456; dur_ns = 333 };
    Telemetry.Span_open
      { stage = "collect"; dialect = ""; pattern = ""; depth = 0; ts_ns = 1 };
    Telemetry.Verdict
      { dialect = "mariadb"; pattern = "seed"; verdict = Telemetry.Clean_error;
        case_number = 41; ts_ns = 99 };
    Telemetry.Bug_found
      { dialect = "duckdb"; site = "json/depth"; kind = "SIGSEGV";
        pattern = "P3.2"; case_number = 7; ts_ns = 1000 };
    Telemetry.Fp_signature
      { dialect = "monetdb"; signature = "limit hit after # steps";
        ts_ns = 5 };
  ]

let test_event_jsonl_roundtrip () =
  (* serialize as JSONL, parse each line back, compare structurally *)
  let lines =
    List.map
      (fun ev -> Json.to_string (Telemetry.event_to_json ev))
      sample_events
  in
  List.iter2
    (fun ev line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "line unparseable (%s): %s" e line
      | Ok j ->
        (match Telemetry.event_of_json j with
         | Error e -> Alcotest.failf "event undecodable (%s): %s" e line
         | Ok ev' ->
           Alcotest.(check bool)
             (Printf.sprintf "round-trips: %s" line)
             true (ev = ev')))
    sample_events lines

let test_verdict_counters () =
  let t = Telemetry.create () in
  Telemetry.count_verdict t ~dialect:"mysql" ~pattern:"P1.1" ~case_number:1
    Telemetry.Passed;
  Telemetry.count_verdict t ~dialect:"mysql" ~pattern:"P1.1" ~case_number:2
    Telemetry.Passed;
  Telemetry.count_verdict t ~dialect:"mysql" ~pattern:"P2.1" ~case_number:3
    Telemetry.New_bug;
  Telemetry.count_verdict t ~dialect:"duckdb" ~pattern:"P1.1" ~case_number:4
    Telemetry.Known_crash;
  match Telemetry.verdict_rows t with
  | [ r1; r2; r3 ] ->
    (* sorted by dialect then pattern *)
    Alcotest.(check string) "duckdb first" "duckdb" r1.Telemetry.dialect;
    Alcotest.(check string) "mysql P1.1" "P1.1" r2.Telemetry.pattern;
    Alcotest.(check int) "two passes" 2
      (List.assoc Telemetry.Passed r2.Telemetry.by_class);
    Alcotest.(check int) "zero crashes on mysql P1.1" 0
      (List.assoc Telemetry.Known_crash r2.Telemetry.by_class);
    Alcotest.(check int) "one new bug" 1
      (List.assoc Telemetry.New_bug r3.Telemetry.by_class)
  | l -> Alcotest.failf "expected 3 rows, got %d" (List.length l)

(* ----- determinism: sink on vs off must not change verdicts ----- *)

let test_fuzz_determinism_with_sink () =
  let prof = Dialect.find_exn "mariadb" in
  let off = Soft.Soft_runner.fuzz ~budget:600 prof in
  let sink, events = Telemetry.memory_sink () in
  let tel = Telemetry.create ~sink () in
  let on = Soft.Soft_runner.fuzz ~budget:600 ~telemetry:tel prof in
  Alcotest.(check int) "cases" off.Soft.Soft_runner.cases_executed
    on.Soft.Soft_runner.cases_executed;
  Alcotest.(check int) "passed" off.Soft.Soft_runner.passed
    on.Soft.Soft_runner.passed;
  Alcotest.(check int) "clean errors" off.Soft.Soft_runner.clean_errors
    on.Soft.Soft_runner.clean_errors;
  Alcotest.(check int) "false positives" off.Soft.Soft_runner.false_positives
    on.Soft.Soft_runner.false_positives;
  Alcotest.(check int) "unique false positives"
    off.Soft.Soft_runner.unique_false_positives
    on.Soft.Soft_runner.unique_false_positives;
  Alcotest.(check int) "known crashes" off.Soft.Soft_runner.known_crashes
    on.Soft.Soft_runner.known_crashes;
  Alcotest.(check (list string)) "fp signatures"
    off.Soft.Soft_runner.fp_signatures on.Soft.Soft_runner.fp_signatures;
  let sites r =
    List.map
      (fun (b : Soft.Detector.found_bug) ->
        b.Soft.Detector.spec.Sqlfun_fault.Fault.site)
      r.Soft.Soft_runner.bugs
  in
  Alcotest.(check (list string)) "bug sites" (sites off) (sites on);
  Alcotest.(check int) "functions triggered"
    off.Soft.Soft_runner.functions_triggered
    on.Soft.Soft_runner.functions_triggered;
  Alcotest.(check int) "branches covered"
    off.Soft.Soft_runner.branches_covered on.Soft.Soft_runner.branches_covered;
  (* the traced run streamed real events: at least one span per stage *)
  let evs = events () in
  let has_stage stage =
    List.exists
      (function
        | Telemetry.Span_open { stage = s; _ } -> s = stage
        | _ -> false)
      evs
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "trace has a %s span" stage)
        true (has_stage stage))
    [ "campaign"; "collect"; "seed-replay"; "generate"; "execute"; "detect";
      "restart-after-crash" ];
  (* and the sink-off run still aggregated timings for the hot stages *)
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "timings include %s" stage)
        true
        (List.exists
           (fun s -> s.Telemetry.stage = stage)
           off.Soft.Soft_runner.timings))
    [ "campaign"; "collect"; "seed-replay"; "generate"; "execute"; "detect" ]

(* ----- snapshot artifacts ----- *)

let test_campaign_snapshot_json () =
  let prof = Dialect.find_exn "mysql" in
  let r = Soft.Soft_runner.fuzz ~budget:400 prof in
  let j = Soft.Report.campaign_to_json r in
  (* must survive a print/parse cycle and keep the headline numbers *)
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "snapshot unparseable: %s" e
  | Ok j ->
    Alcotest.(check (option string)) "schema" (Some "soft-telemetry/1")
      (Json.str_member "schema" j);
    Alcotest.(check (option string)) "dialect" (Some "mysql")
      (Json.str_member "dialect" j);
    let totals = Option.get (Json.member "totals" j) in
    Alcotest.(check (option int)) "cases"
      (Some r.Soft.Soft_runner.cases_executed)
      (Json.int_member "cases_executed" totals);
    (match Json.member "stages" j with
     | Some (Json.Arr (_ :: _)) -> ()
     | _ -> Alcotest.fail "stages missing or empty");
    (match Json.member "families" j with
     | Some (Json.Arr rows) ->
       Alcotest.(check bool) "has family rollup rows" true (rows <> [])
     | _ -> Alcotest.fail "families missing");
    (match Json.member "coverage" j with
     | Some cov ->
       Alcotest.(check (option int)) "coverage distinct"
         (Some r.Soft.Soft_runner.branches_covered)
         (Json.int_member "distinct" cov)
     | None -> Alcotest.fail "coverage missing")

let test_coverage_to_json () =
  let cov = Sqlfun_coverage.Coverage.create () in
  Sqlfun_coverage.Coverage.hit cov "fn/UPPER";
  Sqlfun_coverage.Coverage.hit cov "fn/UPPER";
  Sqlfun_coverage.Coverage.hit cov "cast/int";
  let j = Sqlfun_coverage.Coverage.to_json cov in
  Alcotest.(check (option int)) "distinct" (Some 2) (Json.int_member "distinct" j);
  Alcotest.(check (option int)) "total hits" (Some 3)
    (Json.int_member "total_hits" j);
  match Json.member "points" j with
  | Some points ->
    Alcotest.(check (option int)) "UPPER hits" (Some 2)
      (Json.int_member "fn/UPPER" points);
    Alcotest.(check (option int)) "cast hits" (Some 1)
      (Json.int_member "cast/int" points)
  | None -> Alcotest.fail "points missing"

(* ----- execute-stage attribution profiler ----- *)

(* burn enough cycles that a scope's duration is visibly nonzero *)
let spin () =
  let x = ref 0 in
  for i = 1 to 20_000 do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x)

let find_row rows func phase =
  match
    List.find_opt
      (fun (r : Profile.row) -> r.Profile.r_func = func && r.Profile.r_phase = phase)
      rows
  with
  | Some r -> r
  | None ->
    Alcotest.failf "no row for %S/%s" func (Profile.phase_to_string phase)

let test_profile_self_vs_children () =
  let p = Profile.create () in
  Profile.set_dialect p "mysql";
  (* root (other) > UPPER eval > storage scan; the scan inherits the
     enclosing function *)
  Profile.enter p Profile.Other;
  Profile.enter_fn p "UPPER" Profile.Eval;
  spin ();
  Profile.enter p Profile.Storage;
  spin ();
  Profile.exit p;
  Profile.exit p;
  Profile.exit p;
  Alcotest.(check int) "all scopes closed" 0 (Profile.depth p);
  let rows = Profile.rows p in
  let eval = find_row rows "UPPER" Profile.Eval in
  let storage = find_row rows "UPPER" Profile.Storage in
  let root = find_row rows "" Profile.Other in
  Alcotest.(check string) "dialect attributed" "mysql" eval.Profile.r_dialect;
  List.iter
    (fun (r : Profile.row) ->
      Alcotest.(check int) "each scope entered once" 1 r.Profile.r_count;
      Alcotest.(check bool) "self-time nonnegative" true (r.Profile.r_self_ns >= 0);
      Alcotest.(check int) "count=1 so max = self" r.Profile.r_self_ns
        r.Profile.r_max_ns)
    [ eval; storage; root ];
  Alcotest.(check bool) "spun scopes accumulated time" true
    (eval.Profile.r_self_ns > 0 && storage.Profile.r_self_ns > 0);
  (* self-accounting: the named phases and the root's leftover are
     exactly the attributed/other split the attribution ratio reports *)
  Alcotest.(check int) "attributed = eval self + storage self"
    (eval.Profile.r_self_ns + storage.Profile.r_self_ns)
    (Profile.attributed_ns p);
  Alcotest.(check int) "other = root self" root.Profile.r_self_ns
    (Profile.other_ns p)

let test_profile_exit_on_exception () =
  let p = Profile.create () in
  Profile.set_dialect p "mysql";
  (try
     Profile.with_fn p "REPEAT" Profile.Eval (fun () -> failwith "boom")
     |> ignore
   with Failure _ -> ());
  Alcotest.(check int) "scope unwound" 0 (Profile.depth p);
  let r = find_row (Profile.rows p) "REPEAT" Profile.Eval in
  Alcotest.(check int) "charge recorded" 1 r.Profile.r_count

let test_profile_merge () =
  let mk () =
    let p = Profile.create () in
    Profile.set_dialect p "mysql";
    Profile.with_fn p "UPPER" Profile.Eval spin;
    p
  in
  let a = mk () and b = mk () in
  Profile.with_fn b "LOWER" Profile.Eval spin;
  let a_self = (find_row (Profile.rows a) "UPPER" Profile.Eval).Profile.r_self_ns
  and b_self = (find_row (Profile.rows b) "UPPER" Profile.Eval).Profile.r_self_ns in
  Profile.merge_into ~dst:a b;
  let merged = find_row (Profile.rows a) "UPPER" Profile.Eval in
  Alcotest.(check int) "counts add" 2 merged.Profile.r_count;
  Alcotest.(check int) "totals add" (a_self + b_self) merged.Profile.r_self_ns;
  Alcotest.(check int) "maxes take the max" (max a_self b_self)
    merged.Profile.r_max_ns;
  Alcotest.(check int) "disjoint keys union" 1
    (find_row (Profile.rows a) "LOWER" Profile.Eval).Profile.r_count

let test_profile_folded_format () =
  let p = Profile.create () in
  Profile.set_dialect p "mysql";
  Profile.enter p Profile.Other;
  Profile.with_fn p "UPPER" Profile.Eval spin;
  spin ();
  Profile.exit p;
  let lines = Profile.folded_lines p in
  Alcotest.(check bool) "emits stacks" true (lines <> []);
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ stack; count ] ->
        Alcotest.(check bool)
          (Printf.sprintf "weight numeric: %s" line)
          true
          (int_of_string_opt count <> None);
        (match String.split_on_char ';' stack with
         | [ "soft"; "mysql"; func; phase ] ->
           Alcotest.(check bool) "func frame nonempty" true (func <> "");
           Alcotest.(check bool)
             (Printf.sprintf "phase known: %s" phase)
             true
             (Profile.phase_of_string phase <> None)
         | frames ->
           Alcotest.failf "expected 4 frames, got %d in %s"
             (List.length frames) line)
      | _ -> Alcotest.failf "not 'stack weight': %s" line)
    lines;
  (* the anonymous root renders as "-" *)
  Alcotest.(check bool) "root frame renders as -" true
    (List.exists
       (fun l -> String.length l >= 12 && String.sub l 0 12 = "soft;mysql;-")
       lines)

let test_profile_attribution_on_fuzz () =
  (* the acceptance bar: >= 95% of profiled engine time charged to named
     keys on a real (small) campaign *)
  let prof = Dialect.find_exn "mysql" in
  let r = Soft.Soft_runner.fuzz ~budget:2000 prof in
  let p = r.Soft.Soft_runner.profile in
  Alcotest.(check bool) "profiler saw the campaign" true (Profile.rows p <> []);
  let a = Profile.attribution p in
  Alcotest.(check bool)
    (Printf.sprintf "attribution %.4f >= 0.95" a)
    true (a >= 0.95);
  (* the JSON artifact carries the ratio and a bounded hottest table *)
  let j = Profile.to_json ~top:10 p in
  (match Json.member "attribution" j with
   | Some (Json.Float f) ->
     Alcotest.(check bool) "json ratio matches" true
       (Float.abs (f -. a) < 1e-9)
   | _ -> Alcotest.fail "attribution missing from json");
  match Json.member "hottest" j with
  | Some (Json.Arr rows) ->
    Alcotest.(check bool) "hottest bounded" true
      (List.length rows <= 10 && rows <> [])
  | _ -> Alcotest.fail "hottest missing from json"

(* ----- timeseries snapshots ----- *)

let null_probe branches =
  {
    Timeseries.p_branches = branches;
    p_functions = (fun () -> 1);
    p_new_bugs = (fun () -> 0);
    p_dup_bugs = (fun () -> 0);
    p_memo_hits = (fun () -> 0);
    p_memo_misses = (fun () -> 0);
    p_shard_cases = (fun () -> [||]);
  }

let test_timeseries_cadence () =
  let snaps = ref [] in
  let cfg =
    {
      Timeseries.every_cases = 2;
      every_ms = 0;
      emit = (fun s -> snaps := s :: !snaps);
    }
  in
  let b = ref 0 in
  let rec_ = Timeseries.recorder cfg ~shard:3 (null_probe (fun () -> !b)) in
  for i = 1 to 5 do
    b := i * 10;
    Timeseries.tick rec_
  done;
  Timeseries.finalize rec_;
  match List.rev !snaps with
  | [ s1; s2; s3 ] ->
    Alcotest.(check int) "first fires at 2 cases" 2 s1.Timeseries.cases;
    Alcotest.(check int) "first delta" 2 s1.Timeseries.delta_cases;
    Alcotest.(check int) "seq 0" 0 s1.Timeseries.seq;
    Alcotest.(check int) "shard tag" 3 s1.Timeseries.shard;
    Alcotest.(check bool) "periodic not final" false s1.Timeseries.final;
    Alcotest.(check int) "probe read at fire time" 20 s1.Timeseries.branches;
    Alcotest.(check int) "second at 4" 4 s2.Timeseries.cases;
    Alcotest.(check int) "second delta" 2 s2.Timeseries.delta_cases;
    Alcotest.(check int) "seq 1" 1 s2.Timeseries.seq;
    Alcotest.(check int) "probe again" 40 s2.Timeseries.branches;
    Alcotest.(check bool) "finalize is final" true s3.Timeseries.final;
    Alcotest.(check int) "final carries the tail" 5 s3.Timeseries.cases;
    Alcotest.(check int) "final delta" 1 s3.Timeseries.delta_cases;
    Alcotest.(check int) "final branches" 50 s3.Timeseries.branches
  | l -> Alcotest.failf "expected 3 snapshots, got %d" (List.length l)

let test_timeseries_snapshot_roundtrip () =
  let snaps = ref [] in
  let cfg =
    {
      Timeseries.every_cases = 0;
      every_ms = 0;
      emit = (fun s -> snaps := s :: !snaps);
    }
  in
  let s =
    Timeseries.campaign_final cfg ~elapsed_ns:7_000_000 ~cases:123 ~branches:45
      ~functions:6 ~new_bugs:2 ~dup_bugs:3 ~memo_hits:10 ~memo_misses:20
      ~shard_cases:[| 60; 63 |]
  in
  Alcotest.(check int) "campaign-final shard tag" (-1) s.Timeseries.shard;
  Alcotest.(check bool) "campaign-final is final" true s.Timeseries.final;
  Alcotest.(check int) "emitted once" 1 (List.length !snaps);
  match Timeseries.snapshot_of_json (Timeseries.snapshot_to_json s) with
  | Ok s' -> Alcotest.(check bool) "snapshot round-trips" true (s = s')
  | Error e -> Alcotest.failf "snapshot undecodable: %s" e

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
      Alcotest.test_case "span nesting and aggregation" `Quick
        test_span_nesting_and_aggregation;
      Alcotest.test_case "span closes on exception" `Quick
        test_span_closes_on_exception;
      Alcotest.test_case "time_seq" `Quick test_time_seq;
      Alcotest.test_case "histogram percentiles" `Quick
        test_histogram_percentiles;
      Alcotest.test_case "histogram single value" `Quick
        test_histogram_single_value;
      Alcotest.test_case "histogram bucket edges" `Quick
        test_histogram_bucket_edges;
      Alcotest.test_case "long-span percentile clamp" `Quick
        test_long_span_percentile_clamp;
      Alcotest.test_case "verdict class round-trip" `Quick
        test_verdict_class_roundtrip;
      Alcotest.test_case "event jsonl round-trip" `Quick
        test_event_jsonl_roundtrip;
      Alcotest.test_case "verdict counters" `Quick test_verdict_counters;
      Alcotest.test_case "fuzz determinism with sink" `Quick
        test_fuzz_determinism_with_sink;
      Alcotest.test_case "campaign snapshot json" `Quick
        test_campaign_snapshot_json;
      Alcotest.test_case "coverage to_json" `Quick test_coverage_to_json;
      Alcotest.test_case "profile self vs children" `Quick
        test_profile_self_vs_children;
      Alcotest.test_case "profile exit on exception" `Quick
        test_profile_exit_on_exception;
      Alcotest.test_case "profile merge" `Quick test_profile_merge;
      Alcotest.test_case "profile folded format" `Quick
        test_profile_folded_format;
      Alcotest.test_case "profile attribution on fuzz" `Quick
        test_profile_attribution_on_fuzz;
      Alcotest.test_case "timeseries cadence" `Quick test_timeseries_cadence;
      Alcotest.test_case "timeseries snapshot round-trip" `Quick
        test_timeseries_snapshot_roundtrip;
    ] )
