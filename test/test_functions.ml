(** Direct unit tests for the built-in function library, one block per
    category. Expressions are evaluated through the public engine API on a
    strict-casting profile (and a lenient one where the distinction
    matters). *)

open Sqlfun_engine
open Sqlfun_functions
open Sqlfun_value

let strict_engine =
  lazy
    (Engine.create ~registry:(All_fns.registry ())
       ~cast_cfg:{ Cast.strictness = Cast.Strict; json_max_depth = Some 512 }
       ~dialect:"unit-strict" ())

let lenient_engine =
  lazy
    (Engine.create ~registry:(All_fns.registry ())
       ~cast_cfg:{ Cast.strictness = Cast.Lenient; json_max_depth = Some 512 }
       ~dialect:"unit-lenient" ())

let eval ?(lenient = false) expr =
  let e = Lazy.force (if lenient then lenient_engine else strict_engine) in
  match Engine.eval_expr_sql e expr with
  | Ok v -> Value.to_display v
  | Error err -> "!" ^ Engine.error_to_string err

let check ?lenient expr expected =
  Alcotest.(check string) expr expected (eval ?lenient expr)

let check_err ?lenient expr =
  let out = eval ?lenient expr in
  Alcotest.(check bool) (expr ^ " errors") true
    (String.length out > 0 && out.[0] = '!')

(* ----- string ----- *)

let test_string_basics () =
  check "LENGTH('hello')" "5";
  check "LENGTH('')" "0";
  check "CHAR_LENGTH('h\xc3\xa9llo')" "5";
  check "BIT_LENGTH('ab')" "16";
  check "UPPER('mIxEd')" "MIXED";
  check "LOWER('MiXeD')" "mixed";
  check "REVERSE('abc')" "cba";
  check "REVERSE('')" "";
  check "ASCII('A')" "65";
  check "ASCII('')" "0";
  check "CHR(66)" "B";
  check_err "CHR(999)";
  check "SPACE(3)" "   ";
  check "SPACE(0)" "";
  check "SPACE(-5)" ""

let test_string_concat_trim () =
  check "CONCAT('a', 'b', 'c')" "abc";
  check "CONCAT('n', 42)" "n42";
  check "CONCAT(NULL, 'x')" "NULL";
  check "CONCAT_WS('-', 'a', NULL, 'b')" "a-b";
  check "CONCAT_WS(NULL, 'a', 'b')" "NULL";
  check "TRIM('  pad  ')" "pad";
  check "LTRIM('  pad  ')" "pad  ";
  check "RTRIM('  pad  ')" "  pad";
  check "TRIM('xxpadxx', 'x')" "pad";
  check "INITCAP('hello  world')" "Hello  World";
  check "TRANSLATE('12345', '143', 'ax')" "a2x5"

let test_string_slicing () =
  check "SUBSTRING('hello', 2, 3)" "ell";
  check "SUBSTRING('hello', 2)" "ello";
  check "SUBSTRING('hello', -3)" "llo";
  check "SUBSTRING('hello', 0)" "hello";
  check "SUBSTRING('hello', 99)" "";
  check "SUBSTRING('hello', 2, 0)" "";
  check "LEFT('hello', 2)" "he";
  check "LEFT('hello', 99)" "hello";
  check "LEFT('hello', -1)" "";
  check "RIGHT('hello', 3)" "llo";
  check "LPAD('5', 3, '0')" "005";
  check "LPAD('hello', 3)" "hel";
  check "RPAD('5', 3, 'x')" "5xx";
  check "INSERT('Quadratic', 3, 4, 'What')" "QuWhattic";
  check "INSERT('Quadratic', 99, 4, 'What')" "Quadratic"

let test_string_search_replace () =
  check "INSTR('foobarbar', 'bar')" "4";
  check "INSTR('foobar', 'xyz')" "0";
  check "POSITION('ll', 'hello')" "3";
  check "LOCATE('o', 'hello world', 6)" "8";
  check "REPLACE('aaa', 'a', 'bb')" "bbbbbb";
  check "REPLACE('abc', '', 'x')" "abc";
  check "STRCMP('a', 'b')" "-1";
  check "STRCMP('b', 'b')" "0";
  check "SPLIT_PART('a,b,c', ',', 2)" "b";
  check "SPLIT_PART('a,b,c', ',', 9)" "";
  check_err "SPLIT_PART('a,b', '', 1)";
  check "ELT(2, 'a', 'b', 'c')" "b";
  check "ELT(9, 'a')" "NULL";
  check "FIELD('b', 'a', 'b', 'c')" "2";
  check "FIELD('z', 'a')" "0"

let test_string_codecs () =
  check "HEX('AB')" "4142";
  check "HEX(255)" "FF";
  check "UNHEX('4142')" "0x4142";
  check "UNHEX('zz')" "NULL";
  check "TO_BASE64('abc')" "YWJj";
  check "FROM_BASE64('YWJj')" "0x616263";
  check "FROM_BASE64('!bad!')" "NULL";
  check "QUOTE('it''s')" "'it''s'";
  check "QUOTE(NULL)" "NULL";
  Alcotest.(check int) "MD5 width" 32 (String.length (eval "MD5('abc')"));
  Alcotest.(check bool) "MD5 deterministic" true
    (eval "MD5('abc')" = eval "MD5('abc')");
  Alcotest.(check bool) "MD5 avalanche" true
    (eval "MD5('abc')" <> eval "MD5('abd')")

let test_string_repeat_format () =
  check "REPEAT('ab', 3)" "ababab";
  check "REPEAT('ab', 0)" "";
  check "REPEAT('', 1000)" "";
  check "FORMAT(1234567.891, 2)" "1,234,567.89";
  check "FORMAT(1234567.891, 0)" "1,234,568";
  check "FORMAT(0.5, 4)" "0.5000";
  check "FORMAT(-1234.5, 1)" "-1,234.5";
  check "FORMAT(1234567.891, 2, 'de_DE')" "1.234.567,89"

let test_string_regex () =
  check "REGEXP_LIKE('abc', 'a.c')" "TRUE";
  check "REGEXP_LIKE('abc', '^b')" "FALSE";
  check "REGEXP_LIKE('a1b2', '[0-9]+')" "TRUE";
  check "REGEXP_LIKE('xyz', 'x{1,2}y')" "TRUE";
  check "REGEXP_INSTR('abcd', 'c.')" "3";
  check "REGEXP_REPLACE('a1b2', '[0-9]', '#')" "a#b#";
  check "REGEXP_SUBSTR('abcd', 'b.')" "bc";
  check "REGEXP_SUBSTR('abcd', 'zz')" "NULL";
  check_err "REGEXP_LIKE('a', '(unclosed')";
  check_err "REGEXP_LIKE('a', 'a{5,2}')"

(* ----- math ----- *)

let test_math_rounding () =
  check "ABS(-5)" "5";
  check "ABS(-2.5)" "2.5";
  check "SIGN(-3)" "-1";
  check "SIGN(0)" "0";
  check "ROUND(2.567, 2)" "2.57";
  check "ROUND(2.5)" "3";
  check "ROUND(-2.5)" "-3";
  check "ROUND(1234.5, -2)" "1200";
  check "TRUNCATE(2.567, 1)" "2.5";
  check "TRUNCATE(-2.567, 1)" "-2.5";
  check "TRUNCATE(1234.5, -2)" "1200";
  check "CEIL(1.2)" "2";
  check "CEIL(-1.2)" "-1";
  check "FLOOR(1.8)" "1";
  check "FLOOR(-1.2)" "-2";
  check "CEIL(5)" "5"

let test_math_functions () =
  check "SQRT(9)" "3";
  check "SQRT(-1)" "NULL";
  check "POWER(2, 10)" "1024";
  check "POW(2, 0.5)" "1.41421356237";
  check "MOD(10, 3)" "1";
  check "MOD(10, 0)" "NULL";
  check "DIV(10, 3)" "3";
  check "LN(1)" "0";
  check "LN(0)" "NULL";
  check "LOG10(100)" "2";
  check "LOG2(8)" "3";
  check "LOG(2, 8)" "3";
  check "LOG(1, 8)" "NULL";
  check "EXP(0)" "1";
  check "GREATEST(1, 2, 3)" "3";
  check "LEAST(1.5, -2, 30)" "-2";
  check "GREATEST('a', 'b')" "b";
  check_err "GREATEST(1, 'a', ROW(1,2))";
  check "GCD(12, 18)" "6";
  check "FACTORIAL(5)" "120";
  check_err "FACTORIAL(25)";
  check_err "FACTORIAL(-1)";
  check "BIT_COUNT(7)" "3";
  check "BIT_COUNT(0)" "0";
  check "BIT_COUNT(-1)" "64";
  check "DEGREES(PI())" "180";
  check "SIN(0)" "0";
  check "COS(0)" "1";
  check_err "ACOS(5)"

(* ----- condition ----- *)

let test_condition () =
  check "IF(1 < 2, 'y', 'n')" "y";
  check "IF(NULL, 'y', 'n')" "n";
  check "IFNULL(NULL, 'x')" "x";
  check "IFNULL(5, 'x')" "5";
  check "NVL(NULL, 0)" "0";
  check "NULLIF(1, 1)" "NULL";
  check "NULLIF(1, 2)" "1";
  check "COALESCE(NULL, NULL, 3, 4)" "3";
  check "COALESCE(NULL, NULL)" "NULL";
  check "ISNULL(NULL)" "1";
  check "ISNULL(0)" "0";
  check "INTERVAL(23, 1, 15, 17, 30, 44, 200)" "3";
  check "INTERVAL(10, 20, 30)" "0";
  check "INTERVAL(NULL, 10)" "-1";
  check_err "INTERVAL(ROW(1,1), ROW(1,2))";
  check "CHOOSE(2, 'a', 'b', 'c')" "b";
  check "CHOOSE(9, 'a')" "NULL"

(* ----- date ----- *)

let test_date () =
  check "YEAR('2023-05-17')" "2023";
  check "MONTH('2023-05-17')" "5";
  check "DAY('2023-05-17')" "17";
  check "DAYOFWEEK('2023-01-01')" "1";
  check "DAYOFYEAR('2023-02-01')" "32";
  check "QUARTER('2023-05-17')" "2";
  check "LAST_DAY('2024-02-10')" "2024-02-29";
  check "DATEDIFF('2024-01-01', '2023-01-01')" "365";
  check "MONTHNAME('2023-05-17')" "May";
  check "DAYNAME('2023-01-02')" "Monday";
  check "MAKEDATE(2024, 60)" "2024-02-29";
  check "MAKEDATE(2024, 0)" "NULL";
  check "TO_DAYS('2000-01-01')" "2451545";
  check "FROM_DAYS(2451545)" "2000-01-01";
  check "DATE_FORMAT('2023-05-17', '%Y/%m/%d')" "2023/05/17";
  check "DATE_FORMAT('2023-05-17', '%W %M %e')" "Wednesday May 17";
  check "DATE_ADD('2023-01-31', INTERVAL 1 MONTH)" "2023-02-28 00:00:00";
  check "DATE_SUB('2023-01-01', INTERVAL 1 DAY)" "2022-12-31 00:00:00";
  check "UNIX_TIMESTAMP('1970-01-02')" "86400";
  check "FROM_UNIXTIME(86400)" "1970-01-02 00:00:00";
  check "HOUR('2023-05-17 13:45:10')" "13";
  check "MINUTE('2023-05-17 13:45:10')" "45";
  check "SECOND('2023-05-17 13:45:10')" "10";
  check_err "YEAR('not a date')";
  check ~lenient:true "YEAR('not a date')" "!ERROR: argument 1 is not a valid datetime"

(* ----- json ----- *)

let test_json () =
  check "JSON_VALID('{\"a\": 1}')" "TRUE";
  check "JSON_VALID('nope')" "FALSE";
  check "JSON_LENGTH('[1, 2, 3]')" "3";
  check "JSON_LENGTH('{\"a\": 1}')" "1";
  check "JSON_LENGTH('5')" "1";
  check "JSON_LENGTH('{\"a\": [1, 2]}', '$.a')" "2";
  check "JSON_LENGTH('{\"a\": 1}', '$.zzz')" "NULL";
  check "JSON_DEPTH('[[1]]')" "3";
  check "JSON_TYPE('[]')" "array";
  check "JSON_TYPE('\"s\"')" "string";
  check "JSON_EXTRACT('{\"a\": [1, 2]}', '$.a[1]')" "2";
  check "JSON_EXTRACT('{\"a\": 1}', '$.b')" "NULL";
  check_err "JSON_EXTRACT('{\"a\": 1}', 'bad path')";
  check "JSON_KEYS('{\"a\": 1, \"b\": 2}')" "[\"a\",\"b\"]";
  check "JSON_KEYS('[1]')" "NULL";
  check "JSON_ARRAY(1, 'a', NULL)" "[1,\"a\",null]";
  check "JSON_OBJECT('k', 1)" "{\"k\":1}";
  check_err "JSON_OBJECT('k')";
  check_err "JSON_OBJECT(NULL, 1)";
  check "JSON_QUOTE('a\"b')" "\"a\\\"b\"";
  check "JSON_UNQUOTE('\"abc\"')" "abc";
  check "JSON_MERGE('[1]', '[2]', '3')" "[1,2,3]";
  check "JSON_CONTAINS('[1, 2]', '2')" "TRUE";
  check "JSON_CONTAINS('{\"a\": {\"b\": 1}}', '1')" "TRUE";
  check "COLUMN_JSON(COLUMN_CREATE('x', 1.50))" "{\"x\":1.50}";
  check "COLUMN_GET(COLUMN_CREATE('x', 7), 'x')" "7";
  check "COLUMN_GET(COLUMN_CREATE('x', 7), 'y')" "NULL"

(* ----- array / map ----- *)

let test_array () =
  check "ARRAY_LENGTH(ARRAY[1, 2, 3])" "3";
  check "ARRAY_LENGTH(ARRAY[])" "0";
  check "ARRAY_APPEND(ARRAY[1], 2)" "[1, 2]";
  check "ARRAY_PREPEND(0, ARRAY[1])" "[0, 1]";
  check "ARRAY_CONCAT(ARRAY[1], ARRAY[2], ARRAY[3])" "[1, 2, 3]";
  check "ARRAY_CONTAINS(ARRAY[1, 2], 2)" "TRUE";
  check "ARRAY_CONTAINS(ARRAY[1, 2], 9)" "FALSE";
  check "ARRAY_POSITION(ARRAY['a', 'b'], 'b')" "2";
  check "ARRAY_POSITION(ARRAY['a'], 'z')" "NULL";
  check "ARRAY_ELEMENT(ARRAY[10, 20, 30], 2)" "20";
  check "ARRAY_ELEMENT(ARRAY[10, 20, 30], -1)" "30";
  check "ARRAY_ELEMENT(ARRAY[10], 99)" "NULL";
  check "ARRAY_SLICE(ARRAY[1, 2, 3, 4], 2, 2)" "[2, 3]";
  check_err "ARRAY_SLICE(ARRAY[1], 0, 1)";
  check "ARRAY_REVERSE(ARRAY[1, 2])" "[2, 1]";
  check "ARRAY_DISTINCT(ARRAY[1, 1, 2, 1])" "[1, 2]";
  check "ARRAY_SORT(ARRAY[3, 1, 2])" "[1, 2, 3]";
  check "ARRAY_MIN(ARRAY[3, 1, 2])" "1";
  check "ARRAY_MAX(ARRAY[3, 1, 2])" "3";
  check "ARRAY_MIN(ARRAY[])" "NULL";
  check "ARRAY_JOIN(ARRAY['a', 'b'], '-')" "a-b";
  check "ARRAY_FLATTEN(ARRAY[ARRAY[1], ARRAY[2, 3]])" "[1, 2, 3]";
  check "RANGE(4)" "[0, 1, 2, 3]";
  check "RANGE(2, 5)" "[2, 3, 4]";
  check "RANGE(5, 2)" "[]"

let test_map () =
  check "MAP_KEYS(MAP_FROM_ARRAYS(ARRAY['a', 'b'], ARRAY[1, 2]))" "[a, b]";
  check "MAP_VALUES(MAP_FROM_ARRAYS(ARRAY['a'], ARRAY[9]))" "[9]";
  check "MAP_SIZE(MAP_FROM_ARRAYS(ARRAY['a'], ARRAY[1]))" "1";
  check "MAP_CONTAINS(MAP_FROM_ARRAYS(ARRAY['a'], ARRAY[1]), 'a')" "TRUE";
  check "ELEMENT_AT(MAP_FROM_ARRAYS(ARRAY['a'], ARRAY[1]), 'a')" "1";
  check "ELEMENT_AT(MAP_FROM_ARRAYS(ARRAY['a'], ARRAY[1]), 'z')" "NULL";
  check "ELEMENT_AT(ARRAY[5, 6], 2)" "6";
  check_err "MAP_FROM_ARRAYS(ARRAY['a'], ARRAY[1, 2])"

(* ----- casting / conv ----- *)

let test_conv () =
  check "CONVERT('12', SIGNED)" "12";
  check "CONVERT(3.7, SIGNED)" "4";
  check "TOSTRING(42)" "42";
  check "TONUMBER('1.5')" "1.5";
  check "TODECIMALSTRING(3.14159, 2)" "3.14";
  check "TODECIMALSTRING(3.1, 4)" "3.1000";
  check_err "TODECIMALSTRING(1, 99)";
  check "BIN(12)" "1100";
  check "BIN(0)" "0";
  check "OCT(8)" "10";
  check "CONV('ff', 16, 10)" "255";
  check "CONV('255', 10, 16)" "ff";
  check "CONV('-ff', 16, 10)" "-255";
  check "CONV('zz', 16, 10)" "NULL";
  check_err "CONV('1', 1, 10)";
  check "INET_ATON('10.0.0.1')" "167772161";
  check "INET_ATON('nope')" "NULL";
  check "INET_NTOA(167772161)" "10.0.0.1";
  check "INET_NTOA(-1)" "NULL";
  check "INET6_NTOA(INET6_ATON('::1'))" "::1";
  check "INET6_NTOA(INET6_ATON('255.255.255.255'))" "255.255.255.255";
  check "IS_IPV4('1.2.3.4')" "1";
  check "IS_IPV6('1.2.3.4')" "0";
  check "IS_IPV6('fe80::1')" "1";
  check "BIN_TO_UUID(UUID_TO_BIN('6ccd780c-baba-1026-9564-5b8c656024db'))"
    "6ccd780c-baba-1026-9564-5b8c656024db";
  check_err "UUID_TO_BIN('nope')"

(* ----- spatial / xml ----- *)

let test_spatial () =
  check "ST_ASTEXT(POINT(1, 2))" "POINT(1 2)";
  check "ST_X(POINT(3, 4))" "3";
  check "ST_Y(POINT(3, 4))" "4";
  check_err "ST_X(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1)'))";
  check "ST_NUMPOINTS(ST_GEOMFROMTEXT('LINESTRING(0 0, 1 1, 2 2)'))" "3";
  check "ST_LENGTH(ST_GEOMFROMTEXT('LINESTRING(0 0, 3 4)'))" "5";
  check "ST_AREA(ST_GEOMFROMTEXT('POLYGON((0 0, 4 0, 4 4, 0 4, 0 0))'))" "16";
  check "ST_DISTANCE(POINT(0, 0), POINT(3, 4))" "5";
  check "ST_ASTEXT(CENTROID(ST_GEOMFROMTEXT('LINESTRING(0 0, 2 2)')))" "POINT(1 1)";
  check "ST_ASTEXT(BOUNDARY(ST_GEOMFROMTEXT('LINESTRING(0 0, 5 5)')))"
    "MULTIPOINT(0 0, 5 5)";
  check "BOUNDARY(POINT(1, 1))" "NULL";
  check "ST_ASTEXT(ST_GEOMFROMWKB(ST_ASBINARY(POINT(1, 2))))" "POINT(1 2)";
  check "ST_ASTEXT(ENVELOPE(ST_GEOMFROMTEXT('LINESTRING(0 0, 2 3)')))"
    "POLYGON((0 0, 2 0, 2 3, 0 3, 0 0))";
  check_err "ST_GEOMFROMTEXT('TRIANGLE(1)')";
  check_err "ST_ASTEXT(INET6_ATON('255.255.255.255'))"

let test_xml () =
  check "UPDATEXML('<a><c></c></a>', '/a/c[1]', '<c><b></b></c>')"
    "<a><c><b></b></c></a>";
  check "EXTRACTVALUE('<a><b>x</b></a>', '/a/b')" "x";
  check "EXTRACTVALUE('<a><b>x</b><b>y</b></a>', '/a/b[2]')" "y";
  check "EXTRACTVALUE('<a></a>', '/a/zzz')" "";
  check "XML_VALID('<a></a>')" "TRUE";
  check "XML_VALID('<a>')" "FALSE";
  check_err "UPDATEXML('<a></a>', 'bad', '<b></b>')";
  check_err "EXTRACTVALUE('<broken', '/a')"

(* ----- system / sequence ----- *)

let test_system () =
  check "DATABASE()" "main";
  check "CONNECTION_ID()" "1";
  check "TYPEOF(1.5)" "DECIMAL";
  check "TYPEOF('x')" "TEXT";
  check "TYPEOF(NULL)" "NULL";
  check "PG_TYPEOF(1)" "bigint";
  check "SLEEP(0)" "0";
  check_err "SLEEP(-1)";
  check "BENCHMARK(10, 1)" "0";
  check_err "BENCHMARK(-1, 1)";
  check "CURRENT_SETTING('server_version')" "16.1-sim";
  check_err "CURRENT_SETTING('no_such_setting')";
  Alcotest.(check int) "UUID format" 36 (String.length (eval "UUID()"))

(* ----- aggregates via GROUP BY paths (engine-level already covered; here
   the distinct/star cases) ----- *)

let test_aggregate_edges () =
  let e = Lazy.force strict_engine in
  let exec sql =
    match Engine.exec_sql e sql with
    | Ok (Engine.Rows { rows = [ [ v ] ]; _ }) -> Value.to_display v
    | Ok _ -> "?"
    | Error err -> "!" ^ Engine.error_to_string err
  in
  ignore (Engine.exec_sql e "DROP TABLE IF EXISTS agg_t");
  ignore (Engine.exec_sql e "CREATE TABLE agg_t (v INT, s TEXT)");
  ignore
    (Engine.exec_sql e
       "INSERT INTO agg_t VALUES (1, 'a'), (1, 'a'), (2, 'b'), (NULL, 'c')");
  Alcotest.(check string) "count star" "4" (exec "SELECT COUNT(*) FROM agg_t");
  Alcotest.(check string) "count distinct" "2" (exec "SELECT COUNT(DISTINCT v) FROM agg_t");
  Alcotest.(check string) "sum distinct" "3" (exec "SELECT SUM(DISTINCT v) FROM agg_t");
  Alcotest.(check string) "avg" "1.3333" (exec "SELECT AVG(v) FROM agg_t");
  Alcotest.(check string) "stddev of singleton" "0" (exec "SELECT STDDEV(1) ");
  Alcotest.(check string) "variance" "0.22222222222222224"
    (exec "SELECT VARIANCE(v) FROM agg_t WHERE v IS NOT NULL AND v < 3");
  Alcotest.(check string) "median" "1" (exec "SELECT MEDIAN(v) FROM agg_t");
  Alcotest.(check string) "array_agg" "[1, 1, 2, NULL]"
    (exec "SELECT ARRAY_AGG(v) FROM agg_t");
  Alcotest.(check string) "bit_and" "0" (exec "SELECT BIT_AND(v) FROM agg_t");
  Alcotest.(check string) "bit_or" "3" (exec "SELECT BIT_OR(v) FROM agg_t");
  Alcotest.(check string) "jsonb_object_agg distinct" "{\"a\":1,\"b\":2}"
    (exec "SELECT JSONB_OBJECT_AGG(DISTINCT s, v) FROM agg_t WHERE v IS NOT NULL");
  Alcotest.(check string) "group_concat sep" "1|1|2"
    (exec "SELECT GROUP_CONCAT(v, '|') FROM agg_t")

(* NULL propagation is uniform for null-propagating scalars *)
let test_null_propagation () =
  List.iter
    (fun expr -> check expr "NULL")
    [
      "LENGTH(NULL)"; "UPPER(NULL)"; "REPEAT(NULL, 3)"; "REPEAT('a', NULL)";
      "ABS(NULL)"; "ROUND(NULL)"; "SQRT(NULL)"; "YEAR(NULL)";
      "JSON_VALID(NULL)"; "HEX(NULL)"; "ST_ASTEXT(NULL)"; "INET_ATON(NULL)";
      "CONV(NULL, 16, 10)"; "DATEDIFF(NULL, '2023-01-01')";
    ]


(* ----- the catalog tail ----- *)

let test_tail_string () =
  check "MID('hello', 2, 3)" "ell";
  check "MID('hello', -3, 2)" "ll";
  check "UCASE('abc')" "ABC";
  check "LCASE('ABC')" "abc";
  check "OCTET_LENGTH('ab')" "2";
  check "SUBSTRING_INDEX('www.mysql.com', '.', 2)" "www.mysql";
  check "SUBSTRING_INDEX('www.mysql.com', '.', -2)" "mysql.com";
  check "SUBSTRING_INDEX('www.mysql.com', '.', 0)" "";
  check "SUBSTRING_INDEX('abc', '.', 5)" "abc";
  check "SOUNDEX('Robert')" "R163";
  check "SOUNDEX('Rupert')" "R163";
  check "SOUNDEX('')" "";
  check "EXPORT_SET(5, 'Y', 'N', ',', 4)" "Y,N,Y,N";
  check "MAKE_SET(3, 'a', 'b', 'c')" "a,b";
  check "MAKE_SET(0, 'a')" "";
  check "CHAR_FN(65, 66)" "AB"

let test_tail_math () =
  check "COT(PI() / 4)" "1";
  check "SINH(0)" "0";
  check "COSH(0)" "1";
  check "TANH(0)" "0";
  check "CBRT(27)" "3";
  check "SQUARE(3)" "9";
  check "SQUARE(1.5)" "2.25";
  check "LOG1P(0)" "0";
  check "LOG1P(-2)" "NULL";
  check "LCM(4, 6)" "12";
  check "LCM(0, 5)" "0"

let test_tail_date () =
  check "WEEKDAY('2023-01-02')" "0";
  check "WEEKDAY('2023-01-01')" "6";
  check "YEARWEEK('2023-02-01')" "202305";
  check "ADDTIME('2023-05-17 10:00:00', '01:30:00')" "2023-05-17 11:30:00";
  check "SUBTIME('2023-05-17 10:00:00', '01:30:00')" "2023-05-17 08:30:00";
  check "TIMEDIFF('2023-05-17 12:00:00', '2023-05-17 10:30:00')" "01:30:00";
  check "TIMEDIFF('2023-05-17 10:00:00', '2023-05-17 12:30:00')" "-02:30:00";
  check "PERIOD_ADD(202305, 3)" "202308";
  check "PERIOD_ADD(202311, 2)" "202401";
  check_err "PERIOD_ADD(202399, 1)"

let test_tail_json () =
  check "JSON_SET('{\"a\": 1}', '$.a', 2)" "{\"a\":2}";
  check "JSON_SET('{\"a\": 1}', '$.b', 2)" "{\"a\":1,\"b\":2}";
  check "JSON_INSERT('{\"a\": 1}', '$.a', 9)" "{\"a\":1}";
  check "JSON_INSERT('{\"a\": 1}', '$.b', 9)" "{\"a\":1,\"b\":9}";
  check "JSON_REPLACE('{\"a\": 1}', '$.a', 9)" "{\"a\":9}";
  check "JSON_REPLACE('{\"a\": 1}', '$.b', 9)" "{\"a\":1}";
  check "JSON_REMOVE('{\"a\": 1, \"b\": 2}', '$.b')" "{\"a\":1}";
  check "JSON_REMOVE('[1, 2, 3]', '$[1]')" "[1,3]";
  check_err "JSON_REMOVE('{}', '$')";
  check "JSON_SEARCH('{\"a\": \"x\", \"b\": [\"y\", \"x\"]}', 'x')" "$.a";
  check "JSON_SEARCH('[\"p\", \"q\"]', 'q')" "$[1]";
  check "JSON_SEARCH('{}', 'zzz')" "NULL";
  Alcotest.(check bool) "JSON_PRETTY multiline" true
    (String.contains (eval "JSON_PRETTY('{\"a\": [1]}')") '\n')

let test_tail_array_cond () =
  check "ARRAY_SUM(ARRAY[1, 2, 3])" "6";
  check "ARRAY_SUM(ARRAY[1.5, 2.5])" "4.0";
  check "ARRAY_AVG(ARRAY[1, 2, 3])" "2.0000";
  check "ARRAY_AVG(ARRAY[])" "NULL";
  check "ARRAY_UNION(ARRAY[1, 2], ARRAY[2, 3])" "[1, 2, 3]";
  check "ARRAY_INTERSECT(ARRAY[1, 2], ARRAY[2, 3])" "[2]";
  check "DECODE(2, 1, 'one', 2, 'two', 'other')" "two";
  check "DECODE(9, 1, 'one', 'other')" "other";
  check "DECODE(9, 1, 'one')" "NULL";
  check "IIF(2 > 1, 'y', 'n')" "y";
  check "IIF(NULL, 'y', 'n')" "n";
  check "TRY_CAST('12', 'SIGNED')" "12";
  check "TRY_CAST('nope', 'SIGNED')" "NULL";
  check_err "TRY_CAST(1, 'NO_SUCH_TYPE')";
  check "TO_CHAR(1234.5)" "1234.5";
  check "COERCIBILITY('abc')" "4";
  check "COERCIBILITY(NULL)" "6";
  check "CHARSET('abc')" "utf8mb4";
  check "CHARSET(UNHEX('41'))" "binary"

(* ----- compact representations ----- *)

let no_compact_engine =
  lazy
    (Engine.create ~registry:(All_fns.registry ()) ~compact:false
       ~cast_cfg:{ Cast.strictness = Cast.Strict; json_max_depth = Some 512 }
       ~dialect:"unit-nocompact" ())

let eval_boxed expr =
  match Engine.eval_expr_sql (Lazy.force no_compact_engine) expr with
  | Ok v -> Value.to_display v
  | Error err -> "!" ^ Engine.error_to_string err

(* the default engine builds compact values on these shapes; the
   no-compact engine materializes eagerly — every display must agree *)
let test_compact_observational () =
  List.iter
    (fun expr -> Alcotest.(check string) expr (eval_boxed expr) (eval expr))
    [
      "RANGE(500)";
      "ARRAY_REVERSE(RANGE(300))";
      "ARRAY_SLICE(RANGE(1000), 5, 600)";
      "ARRAY_SLICE(RANGE(1000), 900, 500)";
      "ELEMENT_AT(RANGE(2000), 1999)";
      "ARRAY_ELEMENT(RANGE(2000), -1)";
      "ARRAY_MIN(RANGE(5000))";
      "ARRAY_MAX(RANGE(5000))";
      "ARRAY_LENGTH(RANGE(5000))";
      "REPEAT('ab', 3000)";
      "LENGTH(REPEAT('ab', 3000))";
      "CHAR_LENGTH(REPEAT('\xc3\xa9', 3000))";
      "LPAD('x', 5000, 'ab')";
      "RPAD('x', 5000, 'yz')";
      "LENGTH(SPACE(5000))";
      "CONCAT(REPEAT('a', 3000), REPEAT('b', 3000))";
      "UPPER(REPEAT('ab', 3000))";
      "SUBSTRING(REPEAT('abc', 2000), 5999, 4)";
      "REVERSE(REPEAT('ab', 2500))";
    ]

(* spill paths exactly at the resource caps: at-cap succeeds through
   the compact path with the same totals the boxed path enforces, one
   past the cap raises the same resource error *)
let test_compact_resource_boundaries () =
  check "ARRAY_LENGTH(RANGE(1000000))" "1000000";
  check_err "RANGE(1000001)";
  check "ELEMENT_AT(RANGE(1000000), 1000000)" "999999";
  check "ARRAY_MIN(RANGE(1000000))" "0";
  check "ARRAY_MAX(RANGE(1000000))" "999999";
  check "ARRAY_LENGTH(ARRAY_SLICE(RANGE(1000000), 2, 999999))" "999999";
  check "LENGTH(REPEAT('ab', 4000000))" "8000000";
  check_err "REPEAT('ab', 4000001)";
  check "LENGTH(LPAD('x', 8000000, 'ab'))" "8000000";
  check_err "LPAD('x', 8000001, 'ab')";
  check "LENGTH(SPACE(8000000))" "8000000";
  check_err "SPACE(8000001)";
  (* the no-compact engine enforces the identical boundaries *)
  Alcotest.(check string) "boxed at-cap repeat" "8000000"
    (eval_boxed "LENGTH(REPEAT('ab', 4000000))");
  Alcotest.(check bool) "boxed over-cap repeat errors" true
    (String.length (eval_boxed "REPEAT('ab', 4000001)") > 0
     && (eval_boxed "REPEAT('ab', 4000001)").[0] = '!')

let suite =
  ( "functions",
    [
      Alcotest.test_case "string basics" `Quick test_string_basics;
      Alcotest.test_case "string concat/trim" `Quick test_string_concat_trim;
      Alcotest.test_case "string slicing" `Quick test_string_slicing;
      Alcotest.test_case "string search/replace" `Quick test_string_search_replace;
      Alcotest.test_case "string codecs" `Quick test_string_codecs;
      Alcotest.test_case "repeat/format" `Quick test_string_repeat_format;
      Alcotest.test_case "regex" `Quick test_string_regex;
      Alcotest.test_case "math rounding" `Quick test_math_rounding;
      Alcotest.test_case "math functions" `Quick test_math_functions;
      Alcotest.test_case "condition" `Quick test_condition;
      Alcotest.test_case "date" `Quick test_date;
      Alcotest.test_case "json" `Quick test_json;
      Alcotest.test_case "array" `Quick test_array;
      Alcotest.test_case "map" `Quick test_map;
      Alcotest.test_case "conv/inet/uuid" `Quick test_conv;
      Alcotest.test_case "spatial" `Quick test_spatial;
      Alcotest.test_case "xml" `Quick test_xml;
      Alcotest.test_case "system" `Quick test_system;
      Alcotest.test_case "aggregate edges" `Quick test_aggregate_edges;
      Alcotest.test_case "tail: string" `Quick test_tail_string;
      Alcotest.test_case "tail: math" `Quick test_tail_math;
      Alcotest.test_case "tail: date" `Quick test_tail_date;
      Alcotest.test_case "tail: json" `Quick test_tail_json;
      Alcotest.test_case "tail: array/cond/cast" `Quick test_tail_array_cond;
      Alcotest.test_case "null propagation" `Quick test_null_propagation;
      Alcotest.test_case "compact observational equality" `Quick
        test_compact_observational;
      Alcotest.test_case "compact resource boundaries" `Quick
        test_compact_resource_boundaries;
    ] )
