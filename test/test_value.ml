open Sqlfun_value
open Sqlfun_num
open Sqlfun_data

let dec s = Value.Dec (Decimal.of_string_exn s)

let cmp a b = Value.compare_values a b

let test_numeric_coercion () =
  Alcotest.(check (option int)) "int vs dec" (Some 0) (cmp (Value.Int 2L) (dec "2.0"));
  Alcotest.(check (option int)) "int vs float" (Some 0)
    (cmp (Value.Int 2L) (Value.Float 2.0));
  Alcotest.(check (option int)) "dec vs float" (Some (-1))
    (cmp (dec "1.5") (Value.Float 2.5));
  Alcotest.(check (option int)) "bool as number" (Some 0)
    (cmp (Value.Bool true) (Value.Int 1L));
  Alcotest.(check (option int)) "nan incomparable" None
    (cmp (Value.Float Float.nan) (Value.Int 1L))

let test_incomparable () =
  Alcotest.(check (option int)) "null" None (cmp Value.Null (Value.Int 1L));
  Alcotest.(check (option int)) "row vs int" None
    (cmp (Value.Row [ Value.Int 1L ]) (Value.Int 1L));
  Alcotest.(check (option int)) "str vs int" None
    (cmp (Value.Str "1") (Value.Int 1L));
  Alcotest.(check (option int)) "map" None
    (cmp (Value.Map []) (Value.Map []))

let test_collections () =
  let arr l = Value.Arr (List.map (fun i -> Value.Int (Int64.of_int i)) l) in
  Alcotest.(check (option int)) "array eq" (Some 0) (cmp (arr [ 1; 2 ]) (arr [ 1; 2 ]));
  Alcotest.(check (option int)) "array lt" (Some (-1)) (cmp (arr [ 1 ]) (arr [ 1; 2 ]));
  Alcotest.(check (option int)) "array elem" (Some 1) (cmp (arr [ 2 ]) (arr [ 1; 9 ]))

let test_date_string_coercion () =
  match Calendar.date_of_string "2023-05-17" with
  | None -> Alcotest.fail "date"
  | Some d ->
    Alcotest.(check (option int)) "str vs date" (Some 0)
      (cmp (Value.Str "2023-05-17") (Value.Date d));
    Alcotest.(check (option int)) "date vs later str" (Some (-1))
      (cmp (Value.Date d) (Value.Str "2024-01-01"))

let test_display () =
  Alcotest.(check string) "float int" "2" (Value.to_display (Value.Float 2.0));
  Alcotest.(check string) "nan" "NaN" (Value.to_display (Value.Float Float.nan));
  Alcotest.(check string) "inf" "Infinity" (Value.to_display (Value.Float Float.infinity));
  Alcotest.(check string) "blob hex" "0x4142" (Value.to_display (Value.Blob "AB"));
  Alcotest.(check string) "row" "(1, x)"
    (Value.to_display (Value.Row [ Value.Int 1L; Value.Str "x" ]));
  Alcotest.(check string) "interval" "INTERVAL 3 DAY"
    (Value.to_display (Value.Interval { Calendar.amount = 3L; unit_ = Calendar.Day }))

let test_depth_and_size () =
  Alcotest.(check int) "scalar depth" 1 (Value.depth_of (Value.Int 1L));
  Alcotest.(check int) "nested arr depth" 3
    (Value.depth_of (Value.Arr [ Value.Arr [ Value.Arr [] ] ]));
  (match Json.parse "[[1]]" with
   | Ok j -> Alcotest.(check int) "json depth" 3 (Value.depth_of (Value.Json j))
   | Error _ -> Alcotest.fail "json");
  Alcotest.(check bool) "string size" true (Value.size_of (Value.Str "hello") = 5);
  Alcotest.(check bool) "array size grows" true
    (Value.size_of (Value.Arr [ Value.Int 1L; Value.Int 2L ])
     > Value.size_of (Value.Arr [ Value.Int 1L ]))

(* antisymmetry on the comparable fragment *)
let arb_scalar =
  let open QCheck.Gen in
  QCheck.make ~print:Value.to_display
    (oneof
       [
         map (fun i -> Value.Int (Int64.of_int i)) int;
         map (fun f -> Value.Float f) (float_range (-1e6) 1e6);
         map
           (fun n -> Value.Dec (Decimal.of_int n))
           (int_range (-100000) 100000);
         map (fun b -> Value.Bool b) bool;
       ])

let prop_antisym =
  QCheck.Test.make ~name:"compare_values antisymmetric" ~count:300
    (QCheck.pair arb_scalar arb_scalar) (fun (a, b) ->
      match (cmp a b, cmp b a) with
      | Some x, Some y -> x = -y
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_transitive =
  QCheck.Test.make ~name:"compare_values transitive on numerics" ~count:300
    (QCheck.triple arb_scalar arb_scalar arb_scalar) (fun (a, b, c) ->
      match (cmp a b, cmp b c, cmp a c) with
      | Some x, Some y, Some z when x <= 0 && y <= 0 -> z <= 0
      | Some _, Some _, Some _ -> true
      | _ -> true)

(* ----- compact representations ----- *)

let boxed_range ~first ~step ~len =
  Value.Arr
    (List.init len (fun i ->
         Value.Int (Int64.add first (Int64.mul step (Int64.of_int i)))))

let as_range = function
  | Value.Range_arr r -> r
  | _ -> Alcotest.fail "expected Range_arr"

let as_rope = function
  | Value.Rope_str r -> r
  | _ -> Alcotest.fail "expected Rope_str"

let arb_range =
  let open QCheck.Gen in
  QCheck.make
    ~print:(fun (first, len, down) ->
      Printf.sprintf "first=%Ld len=%d down=%b" first len down)
    (triple
       (map Int64.of_int (int_range (-1_000_000) 1_000_000))
       (int_range Value.Compact.min_array_len
          (4 * Value.Compact.min_array_len))
       bool)

(* every observable a consumer can reach must agree with the boxed
   spelling: type/size/depth, display, comparison, length, element
   access, reversal, and the spill itself *)
let prop_range_observational =
  QCheck.Test.make ~name:"range array observationally boxed" ~count:60
    arb_range (fun (first, len, down) ->
      let step = if down then -1L else 1L in
      let compact = Value.range_arr ~first ~step ~len in
      let boxed = boxed_range ~first ~step ~len in
      let r = as_range compact in
      Value.type_of compact = Value.type_of boxed
      && Value.size_of compact = Value.size_of boxed
      && Value.depth_of compact = Value.depth_of boxed
      && Value.to_display compact = Value.to_display boxed
      && Value.compare_values compact boxed = Some 0
      && Value.arr_length compact = Some len
      && Value.range_nth r 0 = Value.Int first
      && Value.range_last r
         = Int64.add first (Int64.mul step (Int64.of_int (len - 1)))
      && Value.view (Value.range_rev r)
         = Value.Arr (List.rev (Value.range_spill r))
      && Value.view compact = boxed)

let prop_range_slice_observational =
  QCheck.Test.make ~name:"range slice observationally boxed" ~count:60
    (QCheck.pair arb_range (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun ((first, len, down), (o0, l0)) ->
      let step = if down then -1L else 1L in
      let r = as_range (Value.range_arr ~first ~step ~len) in
      let offset = o0 mod len in
      let slen = 1 + (l0 mod (len - offset)) in
      let got = Value.view (Value.range_slice r ~offset ~len:slen) in
      let want =
        match boxed_range ~first ~step ~len with
        | Value.Arr vs ->
          Value.Arr
            (List.filteri (fun i _ -> i >= offset && i < offset + slen) vs)
        | _ -> assert false
      in
      got = want)

let utf8_chars s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let arb_rope =
  let open QCheck.Gen in
  let seg =
    oneofl [ "a"; "ab"; "xyz"; "\xc3\xa9"; " \xe2\x98\x83 "; "0123456789" ]
  in
  QCheck.make
    ~print:(fun (s, n, tail) -> Printf.sprintf "%S x %d ^ %S" s n tail)
    (triple seg (int_range 1 2_000)
       (string_size ~gen:printable (int_range 0 12)))

let prop_rope_observational =
  QCheck.Test.make ~name:"rope string observationally boxed" ~count:60
    arb_rope (fun (seg, n, tail) ->
      let rep = Value.str_rope_rep seg n in
      let flat_rep = String.concat "" (List.init n (fun _ -> seg)) in
      let whole =
        if tail = "" then rep
        else
          match Value.rope_concat rep (Value.Str tail) with
          | Some v -> v
          | None -> Alcotest.fail "rope_concat refused string operands"
      in
      let flat = flat_rep ^ tail in
      let r = as_rope whole in
      Value.type_of whole = Value.Ty_str
      && Value.str_bytes whole = Some (String.length flat)
      && Value.size_of whole = Value.size_of (Value.Str flat)
      && Value.depth_of whole = Value.depth_of (Value.Str flat)
      && Value.rope_measure String.length r = String.length flat
      && Value.rope_measure utf8_chars r = utf8_chars flat
      && Value.to_display whole = Value.to_display (Value.Str flat)
      && Value.compare_values whole (Value.Str flat) = Some 0
      (* flatten caches: both calls must return the flat string *)
      && Value.rope_flatten r = flat
      && Value.rope_flatten r = flat
      && Value.view whole = Value.Str flat)

(* spill paths at the representation thresholds: a slice one short of
   the compact floor boxes eagerly, at the floor it stays compact; hit
   and spill counters move exactly when they should *)
let test_compact_thresholds () =
  let n = Value.Compact.min_array_len in
  let c0 = Value.Compact.read () in
  let r = as_range (Value.range_arr ~first:0L ~step:1L ~len:(2 * n)) in
  (match Value.range_slice r ~offset:1 ~len:(n - 1) with
   | Value.Arr vs ->
     Alcotest.(check int) "sub-threshold slice boxes eagerly" (n - 1)
       (List.length vs)
   | _ -> Alcotest.fail "expected boxed slice");
  (match Value.range_slice r ~offset:1 ~len:n with
   | Value.Range_arr s ->
     Alcotest.(check int) "threshold slice stays compact" n s.Value.rg_len
   | _ -> Alcotest.fail "expected compact slice");
  let mid = Value.Compact.since c0 in
  Alcotest.(check bool) "constructions counted" true
    (mid.Value.Compact.hits >= 2);
  Alcotest.(check int) "no spill before view" 0 mid.Value.Compact.spills;
  ignore (Value.view (Value.Range_arr r));
  ignore (Value.view (Value.Range_arr r));
  let fin = Value.Compact.since c0 in
  Alcotest.(check int) "spill counted once (cached)" 1
    fin.Value.Compact.spills

let suite =
  ( "value",
    [
      Alcotest.test_case "numeric coercion" `Quick test_numeric_coercion;
      Alcotest.test_case "incomparable pairs" `Quick test_incomparable;
      Alcotest.test_case "collections" `Quick test_collections;
      Alcotest.test_case "date-string coercion" `Quick test_date_string_coercion;
      Alcotest.test_case "display" `Quick test_display;
      Alcotest.test_case "depth and size" `Quick test_depth_and_size;
      Alcotest.test_case "compact thresholds and spill" `Quick
        test_compact_thresholds;
      QCheck_alcotest.to_alcotest prop_antisym;
      QCheck_alcotest.to_alcotest prop_transitive;
      QCheck_alcotest.to_alcotest prop_range_observational;
      QCheck_alcotest.to_alcotest prop_range_slice_observational;
      QCheck_alcotest.to_alcotest prop_rope_observational;
    ] )
